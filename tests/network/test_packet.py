"""Tests for the StarT-X packet format (paper Fig. 1b)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.packet import (
    MAX_PAYLOAD_WORDS,
    MIN_PAYLOAD_WORDS,
    Packet,
    Priority,
)


def test_minimum_payload_is_two_words():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload_words=[1])


def test_maximum_payload_is_22_words():
    Packet(src=0, dst=1, payload_words=[0] * MAX_PAYLOAD_WORDS)
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload_words=[0] * (MAX_PAYLOAD_WORDS + 1))


def test_tag_must_fit_11_bits():
    Packet(src=0, dst=1, tag=2**11 - 1)
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, tag=2**11)


def test_wire_bytes_includes_two_header_words():
    pkt = Packet(src=0, dst=1, payload_words=[1, 2])
    assert pkt.payload_bytes == 8
    assert pkt.wire_bytes == 16  # 2 header + 2 payload words


def test_crc_computed_on_construction_and_checks():
    pkt = Packet(src=3, dst=9, payload_words=[5, 6, 7])
    assert pkt.check_crc()


def test_payload_tamper_detected():
    pkt = Packet(src=3, dst=9, payload_words=[5, 6, 7])
    pkt.payload_words[1] ^= 0x40
    assert not pkt.check_crc()


def test_corrupt_flag_fails_crc():
    pkt = Packet(src=0, dst=1)
    pkt.corrupt = True
    assert not pkt.check_crc()


def test_header_encodes_priority_and_size():
    pkt = Packet(src=2, dst=5, payload_words=[0] * 7, tag=0x123, priority=Priority.HIGH)
    w0, w1 = pkt.header_words()
    assert (w0 >> 31) & 1 == int(Priority.HIGH)
    assert (w0 >> 15) & 0xFFFF == 5  # downroute carries dst
    assert w1 & 0x1F == 7  # 5-bit size field
    assert (w1 >> 5) & 0x7FF == 0x123  # 11-bit usr tag


def test_default_priority_is_low():
    assert Packet(src=0, dst=1).priority == Priority.LOW


def test_high_priority_sorts_before_low():
    assert Priority.HIGH < Priority.LOW


@given(
    src=st.integers(min_value=0, max_value=2**14 - 1),
    dst=st.integers(min_value=0, max_value=2**16 - 1),
    tag=st.integers(min_value=0, max_value=2**11 - 1),
    n=st.integers(min_value=MIN_PAYLOAD_WORDS, max_value=MAX_PAYLOAD_WORDS),
    data=st.data(),
)
def test_header_roundtrip_any_fields(src, dst, tag, n, data):
    words = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), min_size=n, max_size=n
        )
    )
    pkt = Packet(src=src, dst=dst, payload_words=words, tag=tag)
    w0, w1 = pkt.header_words()
    assert (w0 >> 15) & 0xFFFF == dst
    assert (w1 >> 18) & 0x3FFF == src
    assert (w1 >> 5) & 0x7FF == tag
    assert w1 & 0x1F == n
    assert pkt.check_crc()
    assert pkt.wire_bytes == 4 * (2 + n)
