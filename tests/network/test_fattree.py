"""Tests for the Arctic fat-tree topology, routing and ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.network.fattree import FatTree, FatTreeParams
from repro.network.packet import Packet, Priority
from repro.network.router import ARCTIC_STAGE_LATENCY


def build(n=16, **kw):
    eng = Engine()
    ft = FatTree(eng, n, FatTreeParams(**kw)) if kw else FatTree(eng, n)
    inbox = {ep: [] for ep in range(n)}
    for ep in range(n):
        ft.attach_endpoint(ep, lambda p, ep=ep: inbox[ep].append(p))
    return eng, ft, inbox


def test_invalid_sizes_rejected():
    eng = Engine()
    for bad in (0, 1, 3, 6, 12):
        with pytest.raises(ValueError):
            FatTree(eng, bad)


def test_router_count_per_level():
    _, ft, _ = build(16)
    assert ft.levels == 4
    for lvl in range(1, 5):
        count = sum(1 for (ll, _, _) in ft.routers if ll == lvl)
        assert count == 8  # N/2 routers per level


def test_wiring_up_down_inverse():
    """Descending the down port you arrived by returns to the same router."""
    _, ft, _ = build(16)
    for (l, p, j), _router in ft.routers.items():
        if l >= 2:
            for c in (0, 1):
                child = (l - 1, 2 * p + c, j % (1 << (l - 2)))
                assert child in ft.routers, f"missing child of {(l, p, j)}"


def test_all_pairs_delivery():
    eng, ft, inbox = build(8)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            ft.inject(Packet(src=s, dst=d, payload_words=[s, d]))
    eng.run()
    for d in range(8):
        srcs = sorted(p.src for p in inbox[d])
        assert srcs == sorted(s for s in range(8) if s != d)


def test_packet_hops_equals_twice_lca_level():
    eng, ft, inbox = build(16)
    cases = [(0, 1, 1), (0, 2, 2), (0, 4, 3), (0, 15, 4), (5, 4, 1)]
    for s, d, lca in cases:
        ft.inject(Packet(src=s, dst=d, payload_words=[0, 0]))
    eng.run()
    for s, d, lca in cases:
        (pkt,) = [p for p in inbox[d] if p.src == s]
        # Routers visited: ascend through lca routers, descend through
        # lca-1 more (the top router serves both directions).
        assert pkt.hops == 2 * lca - 1
        assert ft.path_links(s, d) == 2 * lca


def test_head_latency_matches_formula():
    eng, ft, inbox = build(16)
    ft.inject(Packet(src=0, dst=15, payload_words=[0, 0]))
    eng.run()
    (pkt,) = inbox[15]
    expected = ft.path_links(0, 15) * ARCTIC_STAGE_LATENCY
    assert pkt.recv_time == pytest.approx(expected, rel=1e-9)


def test_max_distance_head_latency_is_1_2us_for_16_endpoints():
    """8 links x 0.15 us = 1.2 us; + 16 B serialization ~= the paper's
    1.3 us measured network latency for 8-byte-payload messages."""
    _, ft, _ = build(16)
    assert ft.head_latency(0, 15) == pytest.approx(1.2e-6)


def test_fifo_ordering_same_pair_deterministic_uproute():
    eng, ft, inbox = build(16)

    def blast():
        for i in range(50):
            ft.inject(Packet(src=3, dst=12, payload_words=[i, 0]))
            yield eng.timeout(1e-9)

    eng.process(blast())
    eng.run()
    seq = [p.payload_words[0] for p in inbox[12]]
    assert seq == list(range(50))


def test_random_uproute_still_delivers_everything():
    eng, ft, inbox = build(16, seed=42)
    for i in range(100):
        ft.inject(Packet(src=0, dst=9, payload_words=[i, 0], random_uproute=True))
    eng.run()
    assert sorted(p.payload_words[0] for p in inbox[9]) == list(range(100))


def test_corrupt_packet_dropped_at_first_router():
    eng, ft, inbox = build(8)
    bad = Packet(src=0, dst=5, payload_words=[1, 2])
    bad.corrupt = True
    ft.inject(bad)
    good = Packet(src=0, dst=5, payload_words=[3, 4])
    ft.inject(good)
    eng.run()
    assert len(inbox[5]) == 1
    assert inbox[5][0].payload_words == [3, 4]
    assert ft.total_crc_errors() == 1


def test_high_priority_overtakes_queued_low():
    eng, ft, inbox = build(4)
    # Saturate the 0->3 path with large low-priority packets, then inject
    # a high-priority packet; it must be delivered before the queued tail.
    for i in range(10):
        ft.inject(Packet(src=0, dst=3, payload_words=[0] * 22, tag=i))
    hi = Packet(src=0, dst=3, payload_words=[7, 7], tag=100, priority=Priority.HIGH)
    ft.inject(hi)
    eng.run()
    order = [p.tag for p in inbox[3]]
    # High priority cannot preempt the in-flight packet but must bypass
    # the rest of the queue.
    assert order.index(100) <= 1
    assert sorted(order) == sorted(list(range(10)) + [100])


def test_self_send_loopback():
    eng, ft, inbox = build(4)
    ft.inject(Packet(src=2, dst=2, payload_words=[9, 9]))
    eng.run()
    assert len(inbox[2]) == 1
    assert inbox[2][0].hops == 0


def test_bisection_counts():
    _, ft, _ = build(16)
    assert ft.bisection_links() == 8
    assert ft.bisection_bandwidth() == pytest.approx(8 * 2 * 150e6)
    assert ft.paper_bisection_bandwidth() == pytest.approx(2 * 16 * 150e6)


def test_destination_out_of_range_rejected():
    eng, ft, _ = build(4)
    with pytest.raises(ValueError):
        ft.inject(Packet(src=0, dst=7, payload_words=[0, 0]))


@given(
    n_exp=st.integers(min_value=1, max_value=5),
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31)),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=30, deadline=None)
def test_property_any_topology_delivers_all(n_exp, pairs):
    n = 2**n_exp
    eng, ft, inbox = build(n)
    sent = {d: [] for d in range(n)}
    for s, d in pairs:
        s, d = s % n, d % n
        if s == d:
            continue
        ft.inject(Packet(src=s, dst=d, payload_words=[s, d]))
        sent[d].append(s)
    eng.run()
    for d in range(n):
        assert sorted(p.src for p in inbox[d]) == sorted(sent[d])


@given(
    s=st.integers(min_value=0, max_value=15),
    d=st.integers(min_value=0, max_value=15),
)
def test_property_path_links_symmetric(s, d):
    _, ft, _ = build(16)
    assert ft.path_links(s, d) == ft.path_links(d, s)
    if s != d:
        assert ft.path_links(s, d) >= 2
