"""Tests for the Arctic fat-tree topology, routing and ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.network.errors import EndpointCountError
from repro.network.fattree import (
    FatTree,
    FatTreeParams,
    _mix32,
    down_port_target,
    up_port_target,
)
from repro.network.packet import Packet, Priority
from repro.network.router import ARCTIC_STAGE_LATENCY


def build(n=16, **kw):
    eng = Engine()
    ft = FatTree(eng, n, FatTreeParams(**kw)) if kw else FatTree(eng, n)
    inbox = {ep: [] for ep in range(n)}
    for ep in range(n):
        ft.attach_endpoint(ep, lambda p, ep=ep: inbox[ep].append(p))
    return eng, ft, inbox


def test_invalid_sizes_rejected():
    eng = Engine()
    for bad in (0, 1, 3, 6, 12):
        with pytest.raises(ValueError):
            FatTree(eng, bad)


def test_router_count_per_level():
    _, ft, _ = build(16)
    assert ft.levels == 4
    for lvl in range(1, 5):
        count = sum(1 for (ll, _, _) in ft.routers if ll == lvl)
        assert count == 8  # N/2 routers per level


def test_wiring_up_down_inverse():
    """Descending the down port you arrived by returns to the same router."""
    _, ft, _ = build(16)
    for (l, p, j), _router in ft.routers.items():
        if l >= 2:
            for c in (0, 1):
                child = (l - 1, 2 * p + c, j % (1 << (l - 2)))
                assert child in ft.routers, f"missing child of {(l, p, j)}"


def test_all_pairs_delivery():
    eng, ft, inbox = build(8)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            ft.inject(Packet(src=s, dst=d, payload_words=[s, d]))
    eng.run()
    for d in range(8):
        srcs = sorted(p.src for p in inbox[d])
        assert srcs == sorted(s for s in range(8) if s != d)


def test_packet_hops_equals_twice_lca_level():
    eng, ft, inbox = build(16)
    cases = [(0, 1, 1), (0, 2, 2), (0, 4, 3), (0, 15, 4), (5, 4, 1)]
    for s, d, lca in cases:
        ft.inject(Packet(src=s, dst=d, payload_words=[0, 0]))
    eng.run()
    for s, d, lca in cases:
        (pkt,) = [p for p in inbox[d] if p.src == s]
        # Routers visited: ascend through lca routers, descend through
        # lca-1 more (the top router serves both directions).
        assert pkt.hops == 2 * lca - 1
        assert ft.path_links(s, d) == 2 * lca


def test_head_latency_matches_formula():
    eng, ft, inbox = build(16)
    ft.inject(Packet(src=0, dst=15, payload_words=[0, 0]))
    eng.run()
    (pkt,) = inbox[15]
    expected = ft.path_links(0, 15) * ARCTIC_STAGE_LATENCY
    assert pkt.recv_time == pytest.approx(expected, rel=1e-9)


def test_max_distance_head_latency_is_1_2us_for_16_endpoints():
    """8 links x 0.15 us = 1.2 us; + 16 B serialization ~= the paper's
    1.3 us measured network latency for 8-byte-payload messages."""
    _, ft, _ = build(16)
    assert ft.head_latency(0, 15) == pytest.approx(1.2e-6)


def test_fifo_ordering_same_pair_deterministic_uproute():
    eng, ft, inbox = build(16)

    def blast():
        for i in range(50):
            ft.inject(Packet(src=3, dst=12, payload_words=[i, 0]))
            yield eng.timeout(1e-9)

    eng.process(blast())
    eng.run()
    seq = [p.payload_words[0] for p in inbox[12]]
    assert seq == list(range(50))


def test_random_uproute_still_delivers_everything():
    eng, ft, inbox = build(16, seed=42)
    for i in range(100):
        ft.inject(Packet(src=0, dst=9, payload_words=[i, 0], random_uproute=True))
    eng.run()
    assert sorted(p.payload_words[0] for p in inbox[9]) == list(range(100))


def test_corrupt_packet_dropped_at_first_router():
    eng, ft, inbox = build(8)
    bad = Packet(src=0, dst=5, payload_words=[1, 2])
    bad.corrupt = True
    ft.inject(bad)
    good = Packet(src=0, dst=5, payload_words=[3, 4])
    ft.inject(good)
    eng.run()
    assert len(inbox[5]) == 1
    assert inbox[5][0].payload_words == [3, 4]
    assert ft.total_crc_errors() == 1


def test_high_priority_overtakes_queued_low():
    eng, ft, inbox = build(4)
    # Saturate the 0->3 path with large low-priority packets, then inject
    # a high-priority packet; it must be delivered before the queued tail.
    for i in range(10):
        ft.inject(Packet(src=0, dst=3, payload_words=[0] * 22, tag=i))
    hi = Packet(src=0, dst=3, payload_words=[7, 7], tag=100, priority=Priority.HIGH)
    ft.inject(hi)
    eng.run()
    order = [p.tag for p in inbox[3]]
    # High priority cannot preempt the in-flight packet but must bypass
    # the rest of the queue.
    assert order.index(100) <= 1
    assert sorted(order) == sorted(list(range(10)) + [100])


def test_self_send_loopback():
    eng, ft, inbox = build(4)
    ft.inject(Packet(src=2, dst=2, payload_words=[9, 9]))
    eng.run()
    assert len(inbox[2]) == 1
    assert inbox[2][0].hops == 0


def test_bisection_counts():
    _, ft, _ = build(16)
    assert ft.bisection_links() == 8
    assert ft.bisection_bandwidth() == pytest.approx(8 * 2 * 150e6)
    assert ft.paper_bisection_bandwidth() == pytest.approx(2 * 16 * 150e6)


def test_destination_out_of_range_rejected():
    eng, ft, _ = build(4)
    with pytest.raises(ValueError):
        ft.inject(Packet(src=0, dst=7, payload_words=[0, 0]))


@given(
    n_exp=st.integers(min_value=1, max_value=5),
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31)),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=30, deadline=None)
def test_property_any_topology_delivers_all(n_exp, pairs):
    n = 2**n_exp
    eng, ft, inbox = build(n)
    sent = {d: [] for d in range(n)}
    for s, d in pairs:
        s, d = s % n, d % n
        if s == d:
            continue
        ft.inject(Packet(src=s, dst=d, payload_words=[s, d]))
        sent[d].append(s)
    eng.run()
    for d in range(n):
        assert sorted(p.src for p in inbox[d]) == sorted(sent[d])


@given(
    s=st.integers(min_value=0, max_value=15),
    d=st.integers(min_value=0, max_value=15),
)
def test_property_path_links_symmetric(s, d):
    _, ft, _ = build(16)
    assert ft.path_links(s, d) == ft.path_links(d, s)
    if s != d:
        assert ft.path_links(s, d) >= 2


# -- endpoint-count boundary -------------------------------------------------


def test_invalid_sizes_raise_named_error():
    """Non-power-of-two endpoint counts are rejected with the named
    EndpointCountError (a ValueError) that cites the offending count."""
    eng = Engine()
    for bad in (0, 1, 3, 6, 12, 100):
        with pytest.raises(EndpointCountError) as exc:
            FatTree(eng, bad)
        assert exc.value.n_endpoints == bad
        assert "power-of-two" in str(exc.value)
        assert str(bad) in str(exc.value)


# -- wiring bijection at 1K/4K endpoints (pure closed forms) -----------------


def _router_ids(n):
    levels = n.bit_length() - 1
    for l in range(1, levels + 1):
        for p in range(n >> l):
            for j in range(1 << (l - 1)):
                yield (l, p, j)


@pytest.mark.parametrize("n", [1024, 4096])
def test_wiring_bijection_closed_form(n):
    """Every down port pairs with exactly one up port of its child (and
    vice versa), level-1 down ports cover every endpoint exactly once,
    and the port pairing is a bijection at N=1024 and N=4096."""
    levels = n.bit_length() - 1
    endpoints_seen = []
    child_up_slots = set()  # (child router, up port) consumed by a parent
    for key in _router_ids(n):
        l, p, j = key
        for c in (0, 1):
            kind, target = down_port_target(n, l, p, j, c)
            if l == 1:
                assert kind == "ep"
                endpoints_seen.append(target)
                continue
            assert kind == "router"
            # exactly one up port of the child must point back here
            backs = [
                u
                for u in (0, 1)
                if up_port_target(n, *target, u) == ("router", key)
            ]
            assert backs == [j >> (l - 2)]
            slot = (target, backs[0])
            assert slot not in child_up_slots, f"double-wired {slot}"
            child_up_slots.add(slot)
    # level-1 down ports hit each endpoint exactly once
    assert sorted(endpoints_seen) == list(range(n))
    # every up port of every non-top router is consumed exactly once
    expected_slots = {
        (key, u) for key in _router_ids(n) if key[0] < levels for u in (0, 1)
    }
    assert child_up_slots == expected_slots
    # and the reverse direction: each up port lands on an existing router
    # whose down port c returns to the child
    ids = set(_router_ids(n))
    for key in _router_ids(n):
        l, p, j = key
        for u in (0, 1):
            up = up_port_target(n, l, p, j, u)
            if l == levels:
                assert up is None
                continue
            kind, parent = up
            assert kind == "router" and parent in ids
            pl, pp, pj = parent
            kind, back = down_port_target(n, *parent, p & 1)
            assert (kind, back) == ("router", key)


def _walk_route(n, src, dst, seed=0, inject_seq=0, random_uproute=False):
    """Replay the router logic over the pure wiring forms; returns the
    number of links traversed (injection + internal + delivery)."""
    if src == dst:
        return 0
    links = 1  # injection link into the leaf router
    cur = (1, src // 2, 0)
    h = _mix32(seed, src, dst, inject_seq)
    while True:
        l, p, j = cur
        if (p << l) <= dst < ((p + 1) << l):  # dst inside this subtree
            kind, target = down_port_target(n, l, p, j, (dst >> (l - 1)) & 1)
            links += 1
            if kind == "ep":
                assert target == dst
                return links
            cur = target
        else:
            u = (
                (h >> ((l - 1) % 32)) & 1
                if random_uproute
                else (src >> (l - 1)) & 1
            )
            kind, cur = up_port_target(n, l, p, j, u)
            links += 1
            assert kind == "router"


@pytest.mark.parametrize("n", [1024, 4096])
def test_hop_counts_match_closed_form(n):
    """Walking the wiring router-by-router lands on the destination in
    exactly 2*lca links — the path_links closed form — for both the
    deterministic and the randomized up-route, at N=1024/4096."""
    half, quarter = n // 2, n // 4
    pairs = [
        (0, 1), (0, n - 1), (1, 0), (half - 1, half), (3, 3 ^ quarter),
        (n - 1, 0), (7, 7 ^ half), (half, 2), (quarter, quarter + 3),
    ]
    for src, dst in pairs:
        lca = (src ^ dst).bit_length()
        assert _walk_route(n, src, dst) == 2 * lca
        for inject_seq in range(4):
            assert (
                _walk_route(
                    n, src, dst, seed=42, inject_seq=inject_seq,
                    random_uproute=True,
                )
                == 2 * lca
            )


# -- random-uproute determinism ---------------------------------------------


def _run_random_workload(seed):
    """A mixed random_uproute workload; returns (per-dst recv times,
    per-link packet counts) — together they identify the paths taken."""
    eng, ft, inbox = build(16, seed=seed)
    for i in range(60):
        src, dst = (7 * i) % 16, (3 * i + 5) % 16
        if src == dst:
            dst = (dst + 1) % 16
        ft.inject(
            Packet(src=src, dst=dst, payload_words=[i, 0], random_uproute=True)
        )
    eng.run()
    times = {
        d: [(p.src, p.payload_words[0], p.recv_time) for p in box]
        for d, box in inbox.items()
    }
    link_counts = {link.name: link.stats.packets for link in ft.iter_links()}
    return times, link_counts


def test_random_uproute_determinism():
    """Documented guarantee: identical (seed, workload) -> identical
    paths.  The route choice is a pure hash of (seed, src, dst,
    inject_seq), so two runs agree link-for-link and time-for-time."""
    times_a, links_a = _run_random_workload(seed=7)
    times_b, links_b = _run_random_workload(seed=7)
    assert times_a == times_b
    assert links_a == links_b
    # a different seed re-randomizes the up-paths (same deliveries,
    # different link utilization)
    times_c, links_c = _run_random_workload(seed=8)
    assert links_c != links_a
    assert {d: sorted(v[:2] for v in vs) for d, vs in times_c.items()} == {
        d: sorted(v[:2] for v in vs) for d, vs in times_a.items()
    }
