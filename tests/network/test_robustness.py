"""Fault injection and robustness tests for the fabric/NIU stack.

Section 2.2: "Arctic's link technology is designed such that the
software layer can assume error-free operations.  The correctness of
the network messages is verified at every router stage and at the
network endpoints using CRC.  The software layer only has to check a
1-bit status to detect the unlikely event of a corrupted message."
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import HyadesCluster
from repro.network.fattree import FatTree
from repro.network.packet import Packet
from repro.sim import Engine


def build(n=8):
    eng = Engine()
    ft = FatTree(eng, n)
    inbox = {ep: [] for ep in range(n)}
    for ep in range(n):
        ft.attach_endpoint(ep, lambda p, ep=ep: inbox[ep].append(p))
    return eng, ft, inbox


class TestCRCDetection:
    def test_corruption_at_injection_dropped_at_first_stage(self):
        eng, ft, inbox = build()
        bad = Packet(src=0, dst=7, payload_words=[1, 2])
        bad.corrupt = True
        ft.inject(bad)
        eng.run()
        assert inbox[7] == []
        assert ft.total_crc_errors() == 1

    def test_corruption_mid_flight_detected_downstream(self):
        """Corrupt the packet after it passes the first router: a later
        stage must drop it (verification happens at *every* stage)."""
        eng, ft, inbox = build(16)
        pkt = Packet(src=0, dst=15, payload_words=[1, 2])
        ft.inject(pkt)
        # flip a payload bit while the packet is in the fabric
        eng.schedule(0.4e-6, lambda: pkt.payload_words.__setitem__(0, 999))
        eng.run()
        assert inbox[15] == []
        assert ft.total_crc_errors() >= 1
        # the first router forwarded it (corruption happened later)
        leaf = ft.routers[(1, 0, 0)]
        assert leaf.packets_forwarded >= 1

    def test_endpoint_crc_status_bit(self):
        """Corruption on the final link is caught by the NIU endpoint
        check: the software-visible 1-bit status increments and the
        packet never reaches the PIO queue."""
        cluster = HyadesCluster()
        eng = cluster.engine

        def sender():
            pkt = yield from cluster.niu(0).pio_send(1, [5, 6])
            # corrupt after the last router stage but before delivery
            eng.schedule(0.29e-6, lambda: setattr(pkt, "corrupt", True))

        eng.process(sender())
        eng.run()
        assert cluster.niu(1).crc_status_errors == 1
        assert len(cluster.niu(1).pio_rx) == 0

    def test_good_traffic_flows_around_bad(self):
        eng, ft, inbox = build()
        for i in range(20):
            p = Packet(src=0, dst=5, payload_words=[i, 0])
            if i % 4 == 0:
                p.corrupt = True
            ft.inject(p)
        eng.run()
        got = sorted(p.payload_words[0] for p in inbox[5])
        assert got == [i for i in range(20) if i % 4 != 0]
        assert ft.total_crc_errors() == 5

    @given(bit=st.integers(min_value=0, max_value=30), word=st.integers(min_value=0, max_value=1))
    @settings(max_examples=30, deadline=None)
    def test_property_any_single_bit_flip_detected(self, bit, word):
        eng, ft, inbox = build()
        pkt = Packet(src=0, dst=3, payload_words=[0xAAAA, 0x5555])
        pkt.payload_words[word] ^= 1 << bit
        ft.inject(pkt)
        eng.run()
        assert inbox[3] == []


class TestDroppedPacketAccounting:
    def test_router_keeps_dropped_packets_for_diagnosis(self):
        eng, ft, _ = build()
        bad = Packet(src=2, dst=6, payload_words=[9, 9])
        bad.corrupt = True
        ft.inject(bad)
        eng.run()
        dropped = [p for r in ft.routers.values() for p in r.dropped]
        assert dropped == [bad]

    def test_crc_errors_isolated_per_flow(self):
        """A corrupted VI transfer fragment is dropped; the transfer
        simply never completes (detectable), while an independent
        transfer on another pair finishes normally."""
        cluster = HyadesCluster()
        eng = cluster.engine
        done = {}

        def sender(src, dst, poison):
            xid = yield from cluster.niu(src).vi_send(dst, 2048, data=b"x" * 2048)

        def receiver(dst):
            xfer = yield from cluster.niu(dst).vi_serve_request()
            xfer = yield from cluster.niu(dst).vi_wait_complete(xfer.xid)
            done[dst] = xfer

        # poison one fragment of the 0->1 flow mid-run
        orig_inject = cluster.fabric.inject
        count = [0]

        def poisoned_inject(pkt):
            if pkt.src == 0 and pkt.tag == 0x7FF:
                count[0] += 1
                if count[0] == 5:
                    pkt.corrupt = True
            orig_inject(pkt)

        cluster.fabric.inject = poisoned_inject
        eng.process(sender(0, 1, True))
        eng.process(receiver(1))
        eng.process(sender(2, 3, False))
        eng.process(receiver(3))
        eng.run()
        assert 3 in done and done[3].complete  # clean flow finished
        assert 1 not in done  # poisoned flow detectably incomplete
        xfer01 = cluster.niu(1)._vi_rx[list(cluster.niu(1)._vi_rx)[0]]
        assert xfer01.received < xfer01.nbytes


class TestBackpressure:
    def test_pio_rx_overflow_raises_loudly(self):
        """The model refuses to silently drop deliverable traffic: an
        unserviced PIO queue overflowing is a program error."""
        cluster = HyadesCluster()
        eng = cluster.engine

        def blaster():
            for i in range(400):  # rx capacity is 256
                yield from cluster.niu(0).pio_send(1, [i, 0])

        eng.process(blaster())
        with pytest.raises(RuntimeError, match="overflow"):
            eng.run()

    def test_windowed_protocol_respects_finite_queues(self):
        """Sends (0.36 us each) outrun receives (1.86 us each), so bulk
        PIO traffic must bound its outstanding window below the rx
        capacity — as real message layers over StarT-X did.  400
        messages in windows of 128 flow without overflow, in order."""
        cluster = HyadesCluster()
        eng = cluster.engine
        got = []
        window = 128

        def blaster():
            for base in range(0, 400, window):
                for i in range(base, min(base + window, 400)):
                    yield from cluster.niu(0).pio_send(1, [i, 0])
                ack = yield from cluster.niu(0).pio_recv()  # window ack

        def drainer():
            for n in range(400):
                pkt = yield from cluster.niu(1).pio_recv()
                got.append(pkt.payload_words[0])
                if (n + 1) % window == 0 or n == 399:
                    yield from cluster.niu(1).pio_send(0, [n, 0], tag=1)

        eng.process(blaster())
        eng.process(drainer())
        eng.run()
        assert got == list(range(400))
