"""Tests for the topology zoo: registry, geometry, fabrics, crossval."""

import pytest

from repro.sim import Engine
from repro.network.errors import EndpointCountError, TopologyError
from repro.network.fabrics import (
    CrossbarFabric,
    FabricParams,
    GridFabric,
    HubFabric,
    grid_distance,
    node_coords,
)
from repro.network.packet import Packet
from repro.network.topology import (
    SCOREBOARD_TOPOLOGIES,
    TOPOLOGIES,
    balanced_dims,
    crossvalidate_topology,
    make_topology,
    register_topology,
    topology_names,
)


class TestRegistry:
    def test_every_scoreboard_name_registered(self):
        assert set(SCOREBOARD_TOPOLOGIES) <= set(topology_names())

    def test_make_each_at_64(self):
        for name in topology_names():
            topo = make_topology(name, 64)
            assert topo.n_endpoints == 64
            assert topo.name == name
            d = topo.describe()
            assert d["topology"] == name and d["n_endpoints"] == 64

    def test_unknown_name_raises_topology_error(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("nosuch", 16)

    def test_register_custom(self):
        calls = []

        def factory(n):
            calls.append(n)
            return make_topology("ethernet", n)

        register_topology("_test_custom", factory)
        try:
            topo = make_topology("_test_custom", 8)
            assert calls == [8] and topo.n_endpoints == 8
        finally:
            del TOPOLOGIES["_test_custom"]

    def test_non_pow2_rejected_by_name(self):
        for name in ("fattree", "torus2d", "torus3d", "hypercrossbar"):
            with pytest.raises(EndpointCountError):
                make_topology(name, 12)


class TestBalancedDims:
    def test_even_split(self):
        assert balanced_dims(256, 2) == (16, 16)
        assert balanced_dims(4096, 3) == (16, 16, 16)

    def test_extra_factor_on_axis0(self):
        assert balanced_dims(512, 2) == (32, 16)
        assert balanced_dims(1024, 3) == (16, 8, 8)

    def test_too_small_for_ndim(self):
        with pytest.raises(EndpointCountError):
            balanced_dims(4, 3)  # would need a 1-extent axis

    def test_non_pow2(self):
        with pytest.raises(EndpointCountError):
            balanced_dims(48, 2)


class TestGeometry:
    def test_fattree_hops(self):
        t = make_topology("fattree", 16)
        assert t.hop_distance(0, 0) == 0
        assert t.hop_distance(0, 1) == 2
        assert t.hop_distance(0, 15) == 8
        assert t.max_hop_distance() == 8
        assert t.bisection_links() == 8

    def test_torus_wraps_shorter_way(self):
        t = make_topology("torus2d", 16)  # 4x4
        # axis-0 neighbours: one grid link + inject/deliver
        assert t.hop_distance(0, 1) == 3
        # 0 -> 3 wraps: distance 1 on a ring of 4
        assert t.hop_distance(0, 3) == 3
        mesh = make_topology("mesh2d", 16)
        assert mesh.hop_distance(0, 3) == 5  # no wrap: 3 grid links

    def test_torus_bisection_doubles_mesh(self):
        torus = make_topology("torus2d", 64)
        mesh = make_topology("mesh2d", 64)
        assert torus.bisection_links() == 2 * mesh.bisection_links()

    def test_hypercrossbar_bounded_hops(self):
        t = make_topology("hypercrossbar", 512)  # 8x8x8
        assert t.max_hop_distance() == 8  # 2 + 2 per differing axis
        for dst in (1, 9, 511):
            assert t.hop_distance(0, dst) <= 8

    def test_ethernet_is_flat_and_shared(self):
        t = make_topology("ethernet", 16)
        assert t.shared_medium
        assert t.max_hop_distance() == 1
        # half-duplex shared medium: no x2 in the bisection
        assert t.bisection_bandwidth() == t.link_bandwidth

    def test_cost_model_carries_hop_latency(self):
        t = make_topology("torus3d", 4096)
        m = t.cost_model()
        assert m.hop_latency == pytest.approx(
            t.neighbor_hops() * t.stage_latency
        )
        # the surcharge is part of every transfer quote
        base = m.transfer_overhead + m.hop_latency
        assert m.transfer_time(0) == pytest.approx(base)


class TestFabricDelivery:
    def _deliver_all_pairs(self, fabric, engine, n):
        inbox = {ep: [] for ep in range(n)}
        for ep in range(n):
            fabric.attach_endpoint(ep, lambda p, ep=ep: inbox[ep].append(p))
        for s in range(n):
            for d in range(n):
                if s != d:
                    fabric.inject(Packet(src=s, dst=d, payload_words=[s, d]))
        engine.run()
        for d in range(n):
            assert sorted(p.src for p in inbox[d]) == sorted(
                s for s in range(n) if s != d
            )

    def test_grid_fabric_all_pairs(self):
        eng = Engine()
        self._deliver_all_pairs(GridFabric(eng, (4, 2), wrap=True), eng, 8)

    def test_mesh_fabric_all_pairs(self):
        eng = Engine()
        self._deliver_all_pairs(GridFabric(eng, (4, 2), wrap=False), eng, 8)

    def test_crossbar_fabric_all_pairs(self):
        eng = Engine()
        self._deliver_all_pairs(CrossbarFabric(eng, (2, 2, 2)), eng, 8)

    def test_hub_fabric_all_pairs(self):
        eng = Engine()
        self._deliver_all_pairs(HubFabric(eng, 8), eng, 8)

    def test_grid_coords_roundtrip(self):
        dims = (4, 2, 8)
        for node in (0, 1, 17, 63):
            assert (
                node_coords(node, dims)[0] == node % 4
            )  # axis 0 fastest
            c = node_coords(node, dims)
            back = sum(
                ci * s
                for ci, s in zip(c, (1, 4, 8))
            )
            assert back == node
        assert grid_distance(0, 3, (4, 4), wrap=True) == 1
        assert grid_distance(0, 3, (4, 4), wrap=False) == 3


class TestCrossValidation:
    @pytest.mark.parametrize("name", SCOREBOARD_TOPOLOGIES)
    def test_within_ten_percent_at_16(self, name):
        r = crossvalidate_topology(make_topology(name, 16))
        assert r["rel_err"] <= 0.10, (
            f"{name}: DES {r['des_s']:.3e}s vs model "
            f"{r['predicted_s']:.3e}s ({r['rel_err']:.1%})"
        )

    def test_fattree_crossval_pairs_are_max_distance(self):
        t = make_topology("fattree", 16)
        for s, d in t.crossval_pairs():
            assert t.hop_distance(s, d) == t.max_hop_distance()
