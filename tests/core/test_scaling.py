"""Tests for the scaling-study sweeps."""

import pytest

from repro.core.scaling import cpu_sweep, model_at, resolution_sweep
from repro.network.costmodel import arctic_cost_model, fast_ethernet_cost_model


class TestModelAt:
    def test_single_cpu_perfect_efficiency(self):
        p = model_at(1)
        assert p.efficiency == 1.0
        assert p.sustained == pytest.approx(0.051e9, rel=0.05)

    def test_sixteen_cpus_matches_fig10_regime(self):
        p = model_at(16)
        assert 0.55e9 < p.sustained < 0.95e9

    def test_untileable_configuration_rejected(self):
        with pytest.raises(ValueError):
            model_at(16, nx=30, ny=64)

    def test_pfpp_fields_populated(self):
        p = model_at(16)
        assert p.pfpp_ds > 0 and p.pfpp_ps > 0


class TestSweeps:
    def test_arctic_sustained_monotone_through_64(self):
        pts = cpu_sweep((1, 2, 4, 8, 16, 32, 64), cost_model=arctic_cost_model())
        rates = [p.sustained for p in pts]
        assert rates == sorted(rates)

    def test_efficiency_never_exceeds_one(self):
        for cm in (arctic_cost_model(), fast_ethernet_cost_model()):
            for p in cpu_sweep((1, 4, 16, 64), cost_model=cm):
                assert p.efficiency <= 1.0 + 1e-9

    def test_fe_aggregate_peaks_before_64(self):
        pts = cpu_sweep((1, 4, 16, 64), cost_model=fast_ethernet_cost_model())
        rates = [p.sustained for p in pts]
        assert max(rates) != rates[-1]

    def test_resolution_sweep_shapes(self):
        pts = resolution_sweep((1, 2), n_cpus=16)
        assert pts[0].nx == 128 and pts[1].nx == 256
        assert pts[1].efficiency >= pts[0].efficiency

    def test_interconnect_ordering_at_every_size(self):
        for n in (4, 16, 64):
            a = model_at(n, cost_model=arctic_cost_model())
            f = model_at(n, cost_model=fast_ethernet_cost_model())
            assert a.sustained > f.sustained
