"""Tests of the Section 5.2 analytical performance model (eqs. 4-13)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import ATM_PS_PARAMS, DS_PARAMS, OCN_PS_PARAMS, VALIDATION
from repro.core.perf_model import DSPhaseParams, PerformanceModel, PSPhaseParams

US = 1e-6
MIN = 60.0


def paper_atmosphere_model() -> PerformanceModel:
    return PerformanceModel(
        ps=PSPhaseParams.from_ref(ATM_PS_PARAMS),
        ds=DSPhaseParams.from_ref(DS_PARAMS),
    )


class TestPhaseTimes:
    def test_ps_compute_from_fig11(self):
        pm = paper_atmosphere_model()
        # 781 * 5120 / 50e6 s
        assert pm.tps_compute == pytest.approx(781 * 5120 / 50e6)

    def test_ps_exchange_is_five_exchanges(self):
        pm = paper_atmosphere_model()
        assert pm.tps_exch == pytest.approx(5 * 1640 * US)

    def test_ds_structure(self):
        pm = paper_atmosphere_model()
        assert pm.tds_compute == pytest.approx(36 * 1024 / 60e6)
        assert pm.tds_exch == pytest.approx(2 * 115 * US)
        assert pm.tds_gsum == pytest.approx(2 * 13.5 * US)
        assert pm.tds == pytest.approx(pm.tds_compute + pm.tds_exch + pm.tds_gsum)

    def test_trun_is_nt_tps_plus_ntni_tds(self):
        pm = paper_atmosphere_model()
        nt, ni = 100, 60
        assert pm.trun(nt, ni) == pytest.approx(nt * pm.tps + nt * ni * pm.tds)


class TestSection53Numbers:
    """The validation arithmetic must land on the paper's Table values."""

    def test_tcomm_about_30_minutes(self):
        pm = paper_atmosphere_model()
        tcomm = pm.tcomm(VALIDATION.nt, VALIDATION.ni)
        assert tcomm == pytest.approx(30.1 * MIN, rel=0.02)

    def test_tcomp_about_151_minutes(self):
        pm = paper_atmosphere_model()
        tcomp = pm.tcomp(VALIDATION.nt, VALIDATION.ni)
        assert tcomp == pytest.approx(151 * MIN, rel=0.01)

    def test_total_close_to_observed_183(self):
        pm = paper_atmosphere_model()
        total = pm.trun(VALIDATION.nt, VALIDATION.ni)
        assert total == pytest.approx(183 * MIN, rel=0.02)

    def test_trun_equals_tcomm_plus_tcomp(self):
        pm = paper_atmosphere_model()
        nt, ni = VALIDATION.nt, VALIDATION.ni
        assert pm.trun(nt, ni) == pytest.approx(pm.tcomm(nt, ni) + pm.tcomp(nt, ni))

    def test_comm_fraction_about_one_sixth(self):
        pm = paper_atmosphere_model()
        frac = pm.comm_fraction(VALIDATION.nt, VALIDATION.ni)
        assert 0.14 < frac < 0.19


class TestOceanParameters:
    def test_ocean_ps_heavier_than_atmosphere(self):
        atm = paper_atmosphere_model()
        ocn = PerformanceModel(
            ps=PSPhaseParams.from_ref(OCN_PS_PARAMS),
            ds=DSPhaseParams.from_ref(DS_PARAMS),
        )
        assert ocn.tps > atm.tps  # 3x the levels
        assert ocn.tds == pytest.approx(atm.tds)  # DS params shared


@given(
    nt=st.integers(min_value=1, max_value=10**6),
    ni=st.integers(min_value=1, max_value=500),
)
def test_property_decomposition_identity(nt, ni):
    """Trun always decomposes exactly into Tcomm + Tcomp (eqs. 11-13)."""
    pm = paper_atmosphere_model()
    assert pm.trun(nt, ni) == pytest.approx(pm.tcomm(nt, ni) + pm.tcomp(nt, ni), rel=1e-12)


@given(ni=st.floats(min_value=1.0, max_value=1000.0))
def test_property_sustained_rate_bounded_by_hardware(ni):
    pm = paper_atmosphere_model()
    rate = pm.sustained_flops(ni, n_ps_ranks=16, n_ds_ranks=8)
    assert 0 < rate < 16 * 60e6
