"""Tests for the report builder and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.report import SECTIONS, build_report, render_report


class TestReport:
    def test_all_sections_build(self):
        sections = build_report()
        assert [s.key for s in sections] == list(SECTIONS)
        for s in sections:
            assert s.rows and s.headers
            assert len(s.rows[0]) == len(s.headers)

    def test_selected_sections(self):
        sections = build_report(["sec53"])
        assert len(sections) == 1
        assert sections[0].key == "sec53"

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError):
            build_report(["nope"])

    def test_render_contains_paper_anchors(self):
        text = render_report(["sec53", "fig12"])
        assert "30.1" in text  # paper Tcomm
        assert "Arctic" in text
        assert "Fast Ethernet" in text

    def test_fig12_section_values_sane(self):
        (sec,) = build_report(["fig12"])
        arctic_row = next(r for r in sec.rows if r[0] == "Arctic")
        # Pfpp,ps column begins with the model value ~495
        assert arctic_row[4].startswith("49")


class TestCLI:
    def test_report_command(self, capsys):
        assert main(["report", "sec53"]) == 0
        out = capsys.readouterr().out
        assert "Section 5.3" in out

    def test_report_bad_section_exits_2(self, capsys):
        assert main(["report", "bogus"]) == 2

    def test_pfpp_command(self, capsys):
        assert main(["pfpp"]) == 0
        out = capsys.readouterr().out
        assert "Arctic" in out and "Fast Ethernet" in out

    def test_run_command_small(self, capsys):
        rc = main(
            ["run", "--nx", "32", "--ny", "16", "--nz", "4", "--steps", "4", "--dt", "600"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sustained" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


def test_century_command(capsys):
    assert main(["century"]) == 0
    out = capsys.readouterr().out
    assert "century" in out and "days" in out
