"""Tests of the PFPP metric (eqs. 14-15) and the Fig. 12 table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import (
    ATM_PS_PARAMS,
    DS_COMM_BUDGET_PAPER,
    DS_PARAMS,
    FIG12_PAPER,
)
from repro.core.pfpp import (
    ds_comm_budget,
    fig12_table,
    pfpp_ds,
    pfpp_ps,
    reference_decomposition,
    reference_process_grid,
    topology_scoreboard,
)

US = 1e-6


class TestFormulas:
    def test_eq14_arctic(self):
        v = pfpp_ps(781, 5120, 1640 * US)
        assert v == pytest.approx(487e6, rel=0.01)

    def test_eq15_arctic(self):
        v = pfpp_ds(36, 1024, 13.5 * US, 115 * US)
        assert v == pytest.approx(143e6, rel=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pfpp_ps(781, 5120, 0.0)
        with pytest.raises(ValueError):
            pfpp_ds(36, 1024, 0.0, 0.0)

    def test_ds_budget_306us(self):
        """Section 5.4: Pfpp,ds = 60 MFlop/s requires
        tgsum + texchxy <= 306 us."""
        budget = ds_comm_budget(DS_PARAMS.nds, DS_PARAMS.nxy, 60e6)
        assert budget == pytest.approx(DS_COMM_BUDGET_PAPER, rel=0.01)

    def test_gigabit_ethernet_misses_budget_by_10x(self):
        """Section 5.4: 'The Gigabit Ethernet hardware is nearly a
        factor of ten away from this threshold.'"""
        ge = FIG12_PAPER["Gigabit Ethernet"]
        actual = ge["tgsum"] + ge["texchxy"]
        budget = ds_comm_budget(DS_PARAMS.nds, DS_PARAMS.nxy, 60e6)
        assert actual / budget == pytest.approx(10.0, rel=0.05)


class TestFig12PaperColumns:
    """Using the paper's measured comm times, eqs. 14-15 must reproduce
    every Pfpp cell of Fig. 12."""

    @pytest.mark.parametrize("name", list(FIG12_PAPER))
    def test_pfpp_ps_cells(self, name):
        row = FIG12_PAPER[name]
        got = pfpp_ps(ATM_PS_PARAMS.nps, ATM_PS_PARAMS.nxyz, row["texchxyz"])
        assert got == pytest.approx(row["pfpp_ps"], rel=0.01)

    @pytest.mark.parametrize("name", list(FIG12_PAPER))
    def test_pfpp_ds_cells(self, name):
        row = FIG12_PAPER[name]
        got = pfpp_ds(DS_PARAMS.nds, DS_PARAMS.nxy, row["tgsum"], row["texchxy"])
        # the paper prints rounded Pfpp values (e.g. FE 1.6 for 1.68)
        assert got == pytest.approx(row["pfpp_ds"], rel=0.06)


class TestFig12FromModels:
    """The reproduction's own interconnect models must land on the
    paper's Fig. 12 within tolerance."""

    def setup_method(self):
        self.rows = {r.name: r for r in fig12_table(from_models=True)}

    def test_all_three_interconnects_present(self):
        assert set(self.rows) == {"Fast Ethernet", "Gigabit Ethernet", "Arctic"}

    @pytest.mark.parametrize(
        "name,tol", [("Fast Ethernet", 0.02), ("Gigabit Ethernet", 0.02), ("Arctic", 0.05)]
    )
    def test_comm_times_match_paper(self, name, tol):
        row, ref = self.rows[name], FIG12_PAPER[name]
        assert row.tgsum == pytest.approx(ref["tgsum"], rel=tol)
        assert row.texchxy == pytest.approx(ref["texchxy"], rel=tol)
        assert row.texchxyz == pytest.approx(ref["texchxyz"], rel=tol)

    def test_pfpp_ordering_preserved(self):
        """The headline qualitative result: Arctic >> GE >> FE in both
        phases, and only Arctic exceeds the compute rates."""
        fe, ge, ar = (
            self.rows["Fast Ethernet"],
            self.rows["Gigabit Ethernet"],
            self.rows["Arctic"],
        )
        assert ar.pfpp_ps > ge.pfpp_ps > fe.pfpp_ps
        assert ar.pfpp_ds > ge.pfpp_ds > fe.pfpp_ds
        # Arctic's Pfpp exceeds Fps/Fds: compute-bound, interconnect OK
        assert ar.pfpp_ps > 50e6 and ar.pfpp_ds > 60e6
        # Ethernets are far below the DS compute rate: comm-bound
        assert ge.pfpp_ds < 0.2 * 60e6
        assert fe.pfpp_ds < 0.05 * 60e6

    def test_ge_viable_for_coarse_grain_only(self):
        """Section 5.4: GE is 'viable for coarse grain scenarios' (PS)
        but not the fine-grain DS phase."""
        ge = self.rows["Gigabit Ethernet"]
        assert ge.pfpp_ps > 2 * 50e6  # PS fine
        assert ge.pfpp_ds < 60e6 / 5  # DS hopeless


@given(
    nps=st.floats(min_value=1, max_value=1e4),
    nxyz=st.integers(min_value=1, max_value=10**6),
    t=st.floats(min_value=1e-7, max_value=1.0),
)
def test_property_pfpp_scales_inversely_with_comm_time(nps, nxyz, t):
    assert pfpp_ps(nps, nxyz, 2 * t) == pytest.approx(pfpp_ps(nps, nxyz, t) / 2)


class TestReferenceGrids:
    """The derived process grids replacing the old fixed table."""

    def test_paper_sizes_unchanged(self):
        assert reference_process_grid(16) == (4, 4)
        assert reference_process_grid(64) == (8, 8)
        assert reference_process_grid(256) == (16, 16)

    def test_any_pow2_derives(self):
        assert reference_process_grid(1) == (1, 1)
        assert reference_process_grid(2) == (2, 1)
        assert reference_process_grid(512) == (32, 16)
        assert reference_process_grid(1024) == (32, 32)
        assert reference_process_grid(4096) == (64, 64)
        assert reference_process_grid(16384) == (128, 128)

    def test_non_pow2_raises(self):
        for bad in (0, -4, 3, 48, 100):
            with pytest.raises(ValueError, match="process grid"):
                reference_process_grid(bad)

    def test_grid_covers_ranks(self):
        for k in range(1, 15):
            px, py = reference_process_grid(1 << k)
            assert px * py == 1 << k
            assert px in (py, 2 * py)  # near-square, x-major

    def test_decomposition_weak_scales_past_256(self):
        d, scale = reference_decomposition(256)
        assert (d.nx, d.ny) == (128, 64) and scale == 1.0
        d, scale = reference_decomposition(1024)
        assert scale == 2.0 and d.nx // d.px > d.olx and d.ny // d.py > d.olx
        d, scale = reference_decomposition(4096)
        assert scale == 8.0
        assert d.nx * d.ny == pytest.approx(scale * 128 * 64)


class TestTopologyScoreboard:
    """The cross-architecture PFPP scoreboard (analytic tier)."""

    @classmethod
    def setup_class(cls):
        cls.rows = topology_scoreboard(
            topologies=("fattree", "torus3d", "ethernet"), n_values=(64, 256)
        )

    def test_row_coverage_and_order(self):
        keys = [(r.n_nodes, r.topology) for r in self.rows]
        assert keys == [
            (64, "fattree"), (64, "torus3d"), (64, "ethernet"),
            (256, "fattree"), (256, "torus3d"), (256, "ethernet"),
        ]

    def test_all_terms_positive(self):
        for r in self.rows:
            assert r.tgsum > 0 and r.texchxy > 0 and r.texchxyz > 0
            assert r.pfpp_ps > 0 and r.pfpp_ds > 0
            assert r.area_scale == 1.0  # no weak scaling needed <= 256

    def test_fattree_dominates_ethernet(self):
        by = {(r.n_nodes, r.topology): r for r in self.rows}
        for n in (64, 256):
            assert by[(n, "fattree")].pfpp_ps > by[(n, "ethernet")].pfpp_ps
            assert by[(n, "fattree")].pfpp_ds > by[(n, "ethernet")].pfpp_ds

    def test_ethernet_gsum_is_measured_fit(self):
        assert all(
            r.gsum_algorithm == "mpi-fit"
            for r in self.rows
            if r.topology == "ethernet"
        )
        assert all(
            r.gsum_algorithm != "mpi-fit"
            for r in self.rows
            if r.topology != "ethernet"
        )

    def test_unknown_topology_raises(self):
        from repro.network.errors import TopologyError

        with pytest.raises(TopologyError):
            topology_scoreboard(topologies=("nosuch",), n_values=(16,))
