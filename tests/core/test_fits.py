"""Tests for the fitting utilities and the closed-loop fits:
measurements from our simulated hardware must yield constants close to
the paper's published fits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fits import fit_bandwidth_model, fit_gsum_model, least_squares
from repro.hardware.cluster import HyadesCluster
from repro.network.costmodel import ARCTIC_GSUM_MEASURED
from repro.parallel.des_collectives import des_global_sum, des_transfer_bandwidth

US = 1e-6


class TestLeastSquares:
    def test_exact_line_recovered(self):
        fit = least_squares([0, 1, 2, 3], [1.0, 3.0, 5.0, 7.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.offset == pytest.approx(1.0)
        assert fit.rms_residual == pytest.approx(0.0, abs=1e-12)
        assert fit(10) == pytest.approx(21.0)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ValueError):
            least_squares([1.0], [2.0])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            least_squares([2.0, 2.0], [1.0, 3.0])

    @given(
        a=st.floats(min_value=-100, max_value=100),
        b=st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=30)
    def test_property_recovers_any_line(self, a, b):
        xs = [0.0, 1.0, 2.0, 5.0]
        fit = least_squares(xs, [a * x + b for x in xs])
        assert fit.slope == pytest.approx(a, abs=1e-9)
        assert fit.offset == pytest.approx(b, abs=1e-9)


class TestGsumFit:
    def test_paper_measurements_give_paper_fit(self):
        """Fitting the paper's own four latencies reproduces its
        published constants (4.67 log2 N - 0.95 us)."""
        fit = fit_gsum_model(ARCTIC_GSUM_MEASURED)
        assert fit.slope == pytest.approx(4.67 * US, rel=0.02)
        assert fit.offset == pytest.approx(-0.95 * US, rel=0.25)

    def test_des_measurements_give_comparable_fit(self):
        """Closing the loop: measure on the simulated hardware, fit the
        paper's model, land near the paper's slope."""
        measured = {}
        for n in (2, 4, 8, 16):
            _, t = des_global_sum(HyadesCluster(), [1.0] * n)
            measured[n] = t
        fit = fit_gsum_model(measured)
        assert fit.slope == pytest.approx(4.67 * US, rel=0.15)
        assert abs(fit.offset) < 1.0 * US

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fit_gsum_model({3: 1e-6, 6: 2e-6})


class TestBandwidthFit:
    def test_des_transfers_recover_vi_constants(self):
        """Fit t = o + s/B to DES transfer times: the 8.6 us / 110 MB/s
        constants of Section 4.1 fall out."""
        samples = {}
        for s in (1024, 4096, 16384, 65536):
            samples[s] = s / des_transfer_bandwidth(s)
        o, bw = fit_bandwidth_model(samples)
        assert o == pytest.approx(8.6 * US, rel=0.15)
        assert bw == pytest.approx(110e6, rel=0.03)

    def test_nonphysical_fit_rejected(self):
        with pytest.raises(ValueError):
            fit_bandwidth_model({100: 1.0, 200: 0.5})
