"""Tests for the LogP characterization (Fig. 2), the Section 5.3
validation harness and the Fig. 10 sustained table."""

import pytest

from repro.core.constants import FIG2_PAPER
from repro.core.logp import analytic_logp, fig2_table, measure_logp
from repro.core.sustained import fig10_table, hyades_sustained
from repro.core.validation import observed_from_simulation, section53_validation

US = 1e-6
MIN = 60.0


class TestLogP:
    @pytest.mark.parametrize("size", [8, 64])
    def test_measured_os_or_match_paper(self, size):
        lp = measure_logp(size)
        p_os, p_or, _, _ = FIG2_PAPER[size]
        assert lp.os_ == pytest.approx(p_os, rel=0.11)
        assert lp.or_ == pytest.approx(p_or, rel=0.08)

    @pytest.mark.parametrize("size", [8, 64])
    def test_measured_half_rtt_matches_paper(self, size):
        lp = measure_logp(size)
        assert lp.half_rtt == pytest.approx(FIG2_PAPER[size][2], rel=0.06)

    def test_measured_latency_8b(self):
        lp = measure_logp(8)
        assert lp.latency == pytest.approx(1.3 * US, rel=0.10)

    def test_analytic_matches_measured(self):
        for size in (8, 64):
            a, m = analytic_logp(size), measure_logp(size)
            assert a.os_ == m.os_
            assert a.or_ == m.or_
            assert a.half_rtt == pytest.approx(m.half_rtt, rel=0.05)

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            measure_logp(4)
        with pytest.raises(ValueError):
            measure_logp(96)

    def test_fig2_table_has_both_rows(self):
        rows = fig2_table(measured=True)
        assert [r["payload_bytes"] for r in rows] == [8, 64]
        for r in rows:
            assert r["os"] < r["or"] < r["half_rtt"]


class TestValidation:
    def test_paper_numbers(self):
        rep = section53_validation()
        assert rep.tcomm == pytest.approx(30.1 * MIN, rel=0.02)
        assert rep.tcomp == pytest.approx(151 * MIN, rel=0.01)
        assert rep.predicted_total == pytest.approx(181 * MIN, rel=0.01)
        assert abs(rep.relative_error) < 0.02  # within 2% of observed 183

    def test_simulated_observation_agrees_with_model(self):
        """Run the actual (small) GCM on the lockstep runtime, scale up,
        and check the analytic model predicts the virtual wall-clock.

        This mirrors Section 5.3 but with both sides produced by the
        reproduction: the model (fed our own counted/modelled
        parameters) against the 'observed' timed run."""
        from repro.core.perf_model import DSPhaseParams, PerformanceModel, PSPhaseParams
        from repro.gcm.atmosphere import atmosphere_model

        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=300.0)
        nt = 50
        observed = observed_from_simulation(m, n_steps=10, nt=nt)
        # model parameters from this very configuration
        ni = float(sum(h.ni for h in m.history[1:]) / (len(m.history) - 1))
        flops_ps = sum(h.flops_ps for h in m.history[1:]) / (len(m.history) - 1)
        flops_ds = sum(h.flops_ds for h in m.history[1:]) / (len(m.history) - 1)
        cm = m.runtime.cost_model
        edges = m.decomp.edge_bytes(nz=5, rank=0)
        texchxyz = cm.exchange_time(edges, mixmode=m.runtime.mixmode, n_ranks=4)
        ds_edges = m.ds_decomp.edge_bytes(nz=1, width=1, rank=0)
        texchxy = cm.exchange_time(ds_edges)
        pm = PerformanceModel(
            ps=PSPhaseParams(
                nps=flops_ps / m.decomp.n_ranks / 1,  # folded: flops per rank
                nxyz=1,
                texchxyz=texchxyz,
                fps=m.runtime.machine.fps,
            ),
            ds=DSPhaseParams(
                nds=flops_ds / m.ds_decomp.n_ranks / max(ni, 1),
                nxy=1,
                tgsum=cm.gsum_time(m.runtime.n_nodes, smp=m.runtime.mixmode),
                texchxy=texchxy,
                fds=m.runtime.machine.fds,
            ),
        )
        predicted = pm.trun(nt, ni)
        assert predicted == pytest.approx(observed, rel=0.15)


class TestFig10:
    def test_single_processor_near_paper(self):
        r = hyades_sustained(1)
        assert r.sustained_flops == pytest.approx(0.054e9, rel=0.08)

    def test_sixteen_processors_shape(self):
        r = hyades_sustained(16)
        # paper reports 0.8 GFlop/s; the model lands in the same regime
        assert 0.55e9 < r.sustained_flops < 0.9e9

    def test_parallel_speedup_order_of_magnitude(self):
        s1 = hyades_sustained(1).sustained_flops
        s16 = hyades_sustained(16).sustained_flops
        assert 10 < s16 / s1 < 16  # paper: "fifteen times higher"

    def test_fig10_table_rows(self):
        rows = fig10_table()
        machines = {(r["machine"], r["processors"]) for r in rows}
        assert ("Hyades", 1) in machines and ("Hyades", 16) in machines
        assert ("Cray Y-MP", 4) in machines
        # qualitative claim: 16-CPU Hyades comparable to one vector CPU
        h16 = next(r for r in rows if r["machine"] == "Hyades" and r["processors"] == 16)
        ymp1 = next(r for r in rows if r["machine"] == "Cray Y-MP" and r["processors"] == 1)
        assert h16["sustained_gflops"] > ymp1["sustained_gflops"]
