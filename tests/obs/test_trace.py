"""Tracer unit tests: track naming, span pairing, export, overhead-off."""

import json

import pytest

from repro.obs import trace
from repro.obs.schema import validate_chrome_trace


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends with tracing off."""
    trace.stop()
    yield
    trace.stop()


def test_tracing_off_by_default():
    assert trace.TRACER is None
    assert trace.active() is None


def test_start_stop_install_and_remove():
    t = trace.start()
    assert trace.active() is t
    assert trace.stop() is t
    assert trace.active() is None


def test_tracing_context_manager_restores_off():
    with trace.tracing() as t:
        assert trace.active() is t
    assert trace.active() is None


def test_complete_span_emits_metadata_once():
    t = trace.Tracer()
    t.complete("fabric", "link0", "a->b", 1e-6, 2e-6, cat="link")
    t.complete("fabric", "link0", "a->b", 3e-6, 4e-6, cat="link")
    metas = [e for e in t.events if e["ph"] == "M"]
    # one process_name + one thread_name, despite two spans
    assert len(metas) == 2
    xs = [e for e in t.events if e["ph"] == "X"]
    assert len(xs) == 2
    assert xs[0]["ts"] == pytest.approx(1.0)  # seconds -> us
    assert xs[0]["dur"] == pytest.approx(1.0)


def test_distinct_tracks_get_distinct_ids():
    t = trace.Tracer()
    t.instant("fabric", "a", "x", 0.0)
    t.instant("fabric", "b", "x", 0.0)
    t.instant("niu", "a", "x", 0.0)
    pids = {e["pid"] for e in t.events if e["ph"] == "i"}
    assert len(pids) == 2
    tids = {(e["pid"], e["tid"]) for e in t.events if e["ph"] == "i"}
    assert len(tids) == 3


def test_begin_end_pairing_and_finalize_autocloses():
    t = trace.Tracer()
    t.begin("processes", "p0", "wait", 1e-6)
    t.begin("processes", "p0", "inner", 2e-6)
    t.end("processes", "p0", 3e-6)
    obj = t.to_chrome()  # finalize() closes the still-open outer span
    begins = [e for e in obj["traceEvents"] if e["ph"] == "B"]
    ends = [e for e in obj["traceEvents"] if e["ph"] == "E"]
    assert len(begins) == len(ends) == 2
    assert validate_chrome_trace(obj) == []


def test_end_without_begin_is_ignored():
    t = trace.Tracer()
    t.end("processes", "p0", 1e-6)
    assert [e for e in t.events if e["ph"] == "E"] == []


def test_counter_and_instant_shapes():
    t = trace.Tracer()
    t.counter("engine", "events", 1e-6, {"pending": 3})
    t.instant("fabric", "link0", "drop", 2e-6, cat="fault", args={"src": 0})
    obj = t.to_chrome()
    assert validate_chrome_trace(obj) == []


def test_max_events_cap_counts_dropped():
    t = trace.Tracer(max_events=4)
    for i in range(10):
        t.instant("fabric", "l", "x", i * 1e-6)
    assert t.n_events == 4
    assert t.dropped > 0
    assert t.to_chrome()["otherData"]["dropped_events"] == t.dropped


def test_save_round_trips_json(tmp_path):
    t = trace.Tracer()
    t.complete("fabric", "link0", "a->b", 0.0, 1e-6)
    path = tmp_path / "trace.json"
    t.save(str(path))
    obj = json.loads(path.read_text())
    assert validate_chrome_trace(obj) == []
    assert obj["otherData"]["generator"] == "repro.obs"
