"""End-to-end tracing: the traced coupled demo and the determinism invariant."""

import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.capture import save_trace, traced_coupled_run
from repro.obs.schema import validate_chrome_trace


@pytest.fixture(autouse=True)
def _no_global_tracer():
    obs_trace.stop()
    yield
    obs_trace.stop()


@pytest.fixture(scope="module")
def traced():
    obs_trace.stop()
    try:
        return traced_coupled_run(windows=1)
    finally:
        obs_trace.stop()


def test_trace_covers_every_clock_domain(traced):
    cats = traced["tracer"].category_counts()
    for cat in ("link", "niu", "proc", "bsp", "coupler"):
        assert cats.get(cat, 0) > 0, f"no '{cat}' events in {cats}"


def test_trace_validates_and_saves(traced, tmp_path):
    path = tmp_path / "run.json"
    obj = save_trace(traced, str(path))
    assert validate_chrome_trace(obj) == []
    on_disk = json.loads(path.read_text())
    assert len(on_disk["traceEvents"]) == len(obj["traceEvents"])


def test_metrics_attached_to_both_isomorphs(traced):
    for key in ("atm_metrics", "ocn_metrics"):
        rec = traced[key]
        assert rec.n_steps == traced["steps_per_component"]
        assert rec.phase("ps").compute_s > 0
        assert rec.phase("ps").exchange_s > 0


def test_tracing_does_not_perturb_the_simulation(traced):
    """The determinism invariant: the tracer only reads clocks, so a
    traced run must be event-for-event identical to an untraced one."""
    from repro.gcm.atmosphere import atmosphere_model
    from repro.gcm.coupled import CouplerParams, DESCoupledModel
    from repro.gcm.ocean import ocean_model
    from repro.hardware.cluster import HyadesCluster

    assert obs_trace.TRACER is None  # genuinely untraced
    cluster = HyadesCluster()
    atm = atmosphere_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    ocn = ocean_model(nx=16, ny=8, nz=4, px=2, py=2, dt=600.0)
    model = DESCoupledModel(
        atm, ocn, cluster, CouplerParams(coupling_interval=2), reliable=True
    )
    model.run(1)
    assert cluster.engine.events_executed == traced["engine_events"]
    assert cluster.engine.now == traced["engine_time_s"]
    assert model.des_elapsed == traced["des_elapsed_s"]
    assert model.elapsed == traced["bsp_elapsed_s"]


def test_bsp_tracks_are_labelled_per_component(traced):
    obj = traced["tracer"].to_chrome()
    names = {
        e["args"]["name"]
        for e in obj["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "bsp:atmosphere" in names
    assert "bsp:ocean" in names
