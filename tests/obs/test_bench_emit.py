"""The unified benchmark emitter: schema'd BENCH_<name>.json records."""

import json

import pytest

from repro.obs.bench import bench_record, read_bench, write_bench


def test_record_has_the_three_uniform_fields():
    rec = bench_record("demo", wall_clock_s=0.25)
    assert rec["wall_clock_s"] == 0.25
    assert rec["virtual_time_s"] is None
    assert rec["model_error"] is None
    assert rec["kind"] == "benchmark"


def test_record_rejects_schema_violations():
    with pytest.raises(ValueError, match="wall_clock_s"):
        bench_record("demo", wall_clock_s=-1.0)
    with pytest.raises(ValueError):
        bench_record("demo", wall_clock_s=0.1, model_error={"x": "not-a-number"})


def test_write_and_read_round_trip(tmp_path):
    path = write_bench(
        tmp_path,
        "fig09_coupled",
        wall_clock_s=1.5,
        virtual_time_s=0.002,
        model_error={"combined_gflops": -0.04},
        data={"windows": 3},
        units={"wall_clock_s": "s"},
    )
    assert path.name == "BENCH_fig09_coupled.json"
    rec = read_bench(path)
    assert rec["virtual_time_s"] == 0.002
    assert rec["model_error"] == {"combined_gflops": -0.04}
    assert rec["data"] == {"windows": 3}
    assert rec["units"]["wall_clock_s"] == "s"


def test_write_creates_out_dir(tmp_path):
    path = write_bench(tmp_path / "nested" / "out", "x", wall_clock_s=0.0)
    assert path.exists()


def test_read_rejects_tampered_record(tmp_path):
    path = write_bench(tmp_path, "x", wall_clock_s=0.1)
    rec = json.loads(path.read_text())
    del rec["data"]
    path.write_text(json.dumps(rec))
    with pytest.raises(ValueError, match="data"):
        read_bench(path)


def test_fixed_timestamp_is_respected():
    rec = bench_record("demo", wall_clock_s=0.0, timestamp=123.0)
    assert rec["created_unix"] == 123.0
