"""The dependency-free schema validator and the artifact schemas."""

import pytest

from repro.obs.schema import (
    BENCH_SCHEMA_VERSION,
    assert_valid,
    validate,
    validate_bench,
    validate_chrome_trace,
)


def _bench(**over):
    rec = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "benchmark",
        "name": "demo",
        "wall_clock_s": 0.5,
        "virtual_time_s": 1.25,
        "model_error": {"sustained_gflops": -0.01},
        "data": {"rows": 3},
    }
    rec.update(over)
    return rec


class TestValidator:
    def test_type_mismatch(self):
        assert validate(3, {"type": "string"})
        assert validate("x", {"type": "string"}) == []

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "number"})
        assert validate(1.5, {"type": "number"}) == []

    def test_union_types(self):
        schema = {"type": ["number", "null"]}
        assert validate(None, schema) == []
        assert validate(2, schema) == []
        assert validate("x", schema)

    def test_required_and_additional(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        assert validate({"a": 1}, schema) == []
        assert any("missing" in e for e in validate({}, schema))
        assert any("unexpected" in e for e in validate({"a": 1, "b": 2}, schema))

    def test_minimum_enum_items(self):
        assert validate(-1, {"type": "number", "minimum": 0})
        assert validate("z", {"enum": ["a", "b"]})
        assert validate([1, "x"], {"type": "array", "items": {"type": "integer"}})
        assert validate([], {"type": "array", "minItems": 1})


class TestBenchSchema:
    def test_valid_record(self):
        assert validate_bench(_bench()) == []

    def test_null_virtual_time_and_model_error_allowed(self):
        assert validate_bench(_bench(virtual_time_s=None, model_error=None)) == []

    def test_missing_field_rejected(self):
        rec = _bench()
        del rec["wall_clock_s"]
        assert any("wall_clock_s" in e for e in validate_bench(rec))

    def test_unknown_field_rejected(self):
        assert any(
            "unexpected" in e for e in validate_bench(_bench(extra="nope"))
        )

    def test_negative_wall_clock_rejected(self):
        assert validate_bench(_bench(wall_clock_s=-1.0))


class TestChromeTraceSchema:
    def test_valid_minimal_trace(self):
        obj = {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
                 "args": {"name": "fabric"}},
                {"ph": "X", "name": "s", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            ]
        }
        assert validate_chrome_trace(obj) == []

    def test_missing_events_key(self):
        assert validate_chrome_trace({})
        assert validate_chrome_trace([])

    def test_empty_trace_flagged(self):
        assert validate_chrome_trace({"traceEvents": []})

    def test_missing_required_field_flagged(self):
        obj = {"traceEvents": [{"ph": "X", "name": "s", "ts": 0}]}
        errors = validate_chrome_trace(obj)
        assert any("dur" in e for e in errors)

    def test_negative_timestamp_flagged(self):
        obj = {"traceEvents": [
            {"ph": "i", "name": "e", "ts": -1, "pid": 1, "tid": 1}
        ]}
        assert any("ts" in e for e in validate_chrome_trace(obj))

    def test_error_cap(self):
        obj = {"traceEvents": [{"bogus": 1}] * 100}
        errors = validate_chrome_trace(obj, max_errors=5)
        assert len(errors) <= 6  # 5 + the suppression marker


def test_assert_valid_raises_with_listing():
    with pytest.raises(ValueError, match="invalid thing"):
        assert_valid(["$.x: bad"], "thing")
    assert_valid([], "thing")  # no raise
