"""Per-phase metrics: recorder mechanics and the cost-model cross-check."""

import pytest

from repro.gcm.ocean import ocean_model
from repro.obs.metrics import MetricsRecorder, PhaseTotals, phase_crosscheck


class TestRecorder:
    def test_record_accumulates_by_phase_and_kind(self):
        rec = MetricsRecorder()
        rec.record("ps", "compute", 1.0, flops=50)
        rec.record("ps", "compute", 0.5, flops=25)
        rec.record("ps", "exchange", 0.25, nbytes=1024, exchanges=5)
        rec.record("ds", "gsum", 0.125, gsums=2)
        ps = rec.phase("ps")
        assert ps.compute_s == 1.5
        assert ps.flops == 75
        assert ps.exchange_s == 0.25
        assert ps.bytes == 1024
        assert ps.n_exchanges == 5
        assert rec.phase("ds").gsum_s == 0.125

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown charge kind"):
            MetricsRecorder().record("ps", "teleport", 1.0)

    def test_totals_properties(self):
        tot = PhaseTotals(compute_s=1.0, exchange_s=0.5, gsum_s=0.25, sync_s=0.1)
        assert tot.comm_s == 0.75
        assert tot.total_s == pytest.approx(1.85)

    def test_end_step_snapshots_deltas(self):
        rec = MetricsRecorder()
        rec.record("ps", "compute", 1.0)
        rec.end_step(ni=3)
        rec.record("ps", "compute", 2.0)
        rec.end_step(ni=5)
        assert rec.n_steps == 2
        assert rec.steps[0].phases["ps"].compute_s == 1.0
        assert rec.steps[1].phases["ps"].compute_s == 2.0
        assert rec.steps[1].meta["ni"] == 5

    def test_per_step_means_and_skip_first(self):
        rec = MetricsRecorder()
        rec.record("ps", "compute", 4.0)
        rec.end_step()
        rec.record("ps", "compute", 2.0)
        rec.end_step()
        assert rec.per_step()["ps"]["compute_s"] == 3.0
        assert rec.per_step(skip_first=True)["ps"]["compute_s"] == 2.0

    def test_report_shape(self):
        rec = MetricsRecorder()
        rec.record("ps", "compute", 1.0)
        rec.end_step()
        rep = rec.report()
        assert set(rep) == {"totals", "per_step", "n_steps"}


class TestModelIntegration:
    def test_model_steps_fill_the_recorder(self):
        model = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=1200.0)
        rec = model.runtime.attach_metrics()
        model.run(2)
        assert rec.n_steps == 2
        assert rec.phase("ps").compute_s > 0
        assert rec.phase("ps").exchange_s > 0
        assert rec.phase("ds").gsum_s > 0
        assert rec.phase("ps").bytes > 0
        assert rec.steps[0].meta["ni"] >= 1

    def test_crosscheck_agrees_with_cost_model_within_5pct(self):
        """The acceptance gate: the telemetry's measured PS/DS
        exchange+gsum split must agree with the analytic cost model."""
        model = ocean_model(nx=32, ny=16, nz=5, px=2, py=2, dt=1200.0)
        model.runtime.attach_metrics()
        model.run(4)
        rows = phase_crosscheck(model)
        quantities = {r["quantity"] for r in rows}
        assert {"ps_exchange", "ds_exchange", "ds_gsum"} <= quantities
        for r in rows:
            assert r["measured_s"] > 0, r
            assert r["rel_err"] is not None, r
            assert abs(r["rel_err"]) < 0.05, r

    def test_crosscheck_serial_includes_ps_compute(self):
        model = ocean_model(nx=16, ny=8, nz=3, px=1, py=1, dt=1200.0)
        model.runtime.attach_metrics()
        model.run(2)
        rows = {r["quantity"]: r for r in phase_crosscheck(model)}
        assert "ps_compute" in rows
        assert abs(rows["ps_compute"]["rel_err"]) < 0.05

    def test_crosscheck_requires_recorder_and_steps(self):
        model = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=1200.0)
        with pytest.raises(ValueError, match="attach a MetricsRecorder"):
            phase_crosscheck(model)
