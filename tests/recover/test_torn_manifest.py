"""Torn/partial MANIFEST hardening: warn and fall back, never raise."""

import json

import pytest

from repro.gcm.atmosphere import atmosphere_model
from repro.gcm.checkpoint import CheckpointError, CheckpointWarning
from repro.recover import CoordinatedCheckpointStore
from repro.recover.checkpoint import MANIFEST_NAME


def small_model():
    return atmosphere_model(nx=8, ny=4, nz=2, px=2, py=1, dt=600.0)


@pytest.fixture
def store_with_good_w0(tmp_path):
    store = CoordinatedCheckpointStore(tmp_path)
    store.checkpoint({"atm": small_model()}, window=0)
    return store


def damage_newer_manifest(store, text):
    """A newer checkpoint whose manifest a dead writer left damaged."""
    record = store.write_shards({"atm": small_model()}, window=2)
    (record.directory / MANIFEST_NAME).write_text(text)
    return record


TORN_MANIFESTS = [
    pytest.param('{"manifest_version": 1, "window": 2', id="truncated-json"),
    pytest.param('{"manifest_version": 1, "window": 2}', id="missing-shards"),
    pytest.param(
        '{"manifest_version": 1, "window": null, "shards": {}}',
        id="null-window",
    ),
    pytest.param('"just a string"', id="not-an-object"),
    pytest.param("", id="empty-file"),
]


@pytest.mark.parametrize("text", TORN_MANIFESTS)
def test_latest_good_warns_and_falls_back(store_with_good_w0, text):
    store = store_with_good_w0
    damage_newer_manifest(store, text)
    with pytest.warns(CheckpointWarning, match="falling back"):
        got = store.latest_good()
    assert got is not None and got.window == 0


@pytest.mark.parametrize("text", TORN_MANIFESTS)
def test_load_record_raises_structured_error(tmp_path, text):
    store = CoordinatedCheckpointStore(tmp_path)
    record = damage_newer_manifest(store, text)
    with pytest.raises(CheckpointError):
        store._load_record(record.directory)


def test_torn_manifest_with_no_predecessor_yields_none(tmp_path):
    store = CoordinatedCheckpointStore(tmp_path)
    damage_newer_manifest(store, '{"manifest_version": 1}')
    with pytest.warns(CheckpointWarning):
        assert store.latest_good() is None


def test_uncommitted_dirs_still_skip_silently(store_with_good_w0, recwarn):
    store = store_with_good_w0
    store.write_shards({"atm": small_model()}, window=2)  # no manifest
    assert store.latest_good().window == 0
    assert not [w for w in recwarn if issubclass(w.category, CheckpointWarning)]


def test_restore_after_fallback_is_usable(tmp_path):
    store = CoordinatedCheckpointStore(tmp_path)
    model = small_model()
    model.run(2)
    store.checkpoint({"atm": model}, window=1)
    expected_step = model.state.step_count
    damage_newer_manifest(store, '{"manifest_version": 1, "window": 3}')

    model.run(2)  # diverge past the checkpoint
    with pytest.warns(CheckpointWarning):
        record = store.latest_good()
    store.restore({"atm": model}, record)
    assert model.state.step_count == expected_step


def test_version_skew_also_falls_back(store_with_good_w0):
    store = store_with_good_w0
    damage_newer_manifest(
        store, json.dumps({"manifest_version": 99, "window": 2, "shards": {}})
    )
    with pytest.warns(CheckpointWarning, match="unsupported version"):
        assert store.latest_good().window == 0
