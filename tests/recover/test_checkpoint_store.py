"""Coordinated checkpoint store: two-phase commit, CRC shards, restore."""

import json

import numpy as np
import pytest

from repro.gcm.atmosphere import atmosphere_model
from repro.gcm.checkpoint import CheckpointError
from repro.gcm.state import FIELDS_2D, FIELDS_3D
from repro.recover import CoordinatedCheckpointStore
from repro.recover.checkpoint import MANIFEST_NAME


def small_model():
    return atmosphere_model(nx=8, ny=4, nz=2, px=2, py=1, dt=600.0)


def global_state(model):
    return {name: model.state.to_global(name) for name in FIELDS_3D + FIELDS_2D}


class TestCommitProtocol:
    def test_uncommitted_checkpoint_is_invisible(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        store.write_shards({"atm": small_model()}, window=0)
        assert store.latest_good() is None

    def test_commit_makes_checkpoint_restorable(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        record = store.write_shards({"atm": small_model()}, window=0)
        store.commit(record)
        got = store.latest_good()
        assert got is not None and got.window == 0 and got.committed
        assert got.total_nbytes() == record.total_nbytes() > 0

    def test_latest_good_skips_newer_uncommitted(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        store.commit(store.write_shards({"atm": model}, window=0))
        model.run(1)
        store.write_shards({"atm": model}, window=2)  # crash before commit
        assert store.latest_good().window == 0

    def test_corrupt_manifest_is_skipped(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        store.commit(store.write_shards({"atm": model}, window=0))
        rec2 = store.write_shards({"atm": model}, window=2)
        store.commit(rec2)
        (rec2.directory / MANIFEST_NAME).write_text("{not json")
        assert store.latest_good().window == 0

    def test_manifest_naming_missing_shard_is_skipped(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        rec = store.write_shards({"atm": small_model()}, window=0)
        store.commit(rec)
        (rec.directory / "atm_rank001.npz").unlink()
        assert store.latest_good() is None


class TestRestore:
    def test_round_trip_is_bit_exact(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        model.run(2)
        before = global_state(model)
        time, steps = model.state.time, model.state.step_count
        store.commit(store.write_shards({"atm": model}, window=1))

        model.run(3)  # evolve past the checkpoint...
        store.restore({"atm": model}, store.latest_good())  # ...and rewind
        after = global_state(model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])
        assert model.state.time == time
        assert model.state.step_count == steps

    def test_restored_run_replays_identically(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        model.run(2)
        store.commit(store.write_shards({"atm": model}, window=1))
        model.run(4)
        final = global_state(model)

        store.restore({"atm": model}, store.latest_good())
        model.run(4)
        replay = global_state(model)
        for name in final:
            np.testing.assert_array_equal(final[name], replay[name])

    def test_corrupted_shard_payload_raises(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        rec = store.write_shards({"atm": model}, window=0)
        store.commit(rec)
        shard = rec.directory / "atm_rank000.npz"
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        shard.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            store.restore({"atm": model}, store.latest_good())

    def test_manifest_is_valid_json_with_all_shards(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        model = small_model()
        rec = store.write_shards({"atm": model}, window=3)
        store.commit(rec)
        manifest = json.loads((rec.directory / MANIFEST_NAME).read_text())
        assert manifest["window"] == 3
        assert sorted(manifest["shards"]) == [
            f"atm_rank{r:03d}.npz" for r in range(model.decomp.n_ranks)
        ]
