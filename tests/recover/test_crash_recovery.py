"""End-to-end self-healing: mid-run node crashes on the DES cluster.

The headline contract: a coupled run that loses a node mid-integration
detects the death by missed heartbeats, remaps the dead node's ranks,
rolls back to the last coordinated checkpoint and finishes **bit-exact**
with the fault-free run.  Failures that cannot be repaired (spare pool
exhausted, no committed checkpoint) surface as structured errors, never
as hangs.
"""

from repro.faults import run_crash_recovery_demo


class TestSelfHealing:
    def test_crash_recovers_bit_exact_with_measured_overhead(self):
        res = run_crash_recovery_demo(windows=3)
        assert res.error is None
        assert res.bit_exact
        # Detection latency within the detector's analytic bound
        # (timeout + period, plus the deterministic stagger).
        hb = res.report["heartbeat"]
        assert res.detection_latency is not None
        assert 0 < res.detection_latency <= hb["timeout"] + 2 * hb["period"]
        # The dead node's rank moved to the hot spare.
        assert res.remaps and res.remaps[0][1] == res.crash_node
        (_, old, new) = res.remaps[0]
        assert new != old
        assert res.restored_window is not None
        # Rollback and checkpointing cost real virtual time.
        assert res.rollback_cost > 0
        assert res.checkpoint_tax > 0
        assert res.total_overhead > 0

    def test_redistribution_doubles_ranks_on_survivor(self):
        """With no spares, the dead node's rank doubles up on the
        least-loaded survivor — still bit-exact."""
        res = run_crash_recovery_demo(n_spares=0, allow_redistribute=True)
        assert res.error is None
        assert res.bit_exact
        (rank, old, new) = res.remaps[0]
        assert old == res.crash_node and new != old
        # Survivor nodes are 0..3 minus the corpse.
        assert new in {0, 2, 3}


class TestStructuredFailure:
    def test_double_crash_exhausts_spares_cleanly(self):
        """Killing a rank node and then its replacement must end in
        UnrecoverableError, not a hang."""
        res = run_crash_recovery_demo(
            crash_node=1, extra_crashes=((7, None),), n_spares=1
        )
        assert res.error_type == "UnrecoverableError"
        assert "no spare" in res.error

    def test_second_spare_survives_double_crash(self):
        res = run_crash_recovery_demo(
            crash_node=1, extra_crashes=((7, None),), n_spares=2
        )
        assert res.error is None
        assert res.bit_exact

    def test_without_recovery_reliable_layer_raises_delivery_error(self):
        res = run_crash_recovery_demo(recover=False)
        assert res.error_type == "DeliveryError"
        assert "gave up" in res.error

    def test_without_recovery_raw_mode_names_the_crashed_node(self):
        """The watchdog diagnostic must say 'crash', not 'protocol bug'."""
        res = run_crash_recovery_demo(recover=False, reliable=False)
        assert res.error_type == "DeadlockError"
        assert "crashed" in res.error
        assert "enable crash recovery" in res.error
