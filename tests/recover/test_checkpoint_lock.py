"""Advisory file lock on the shard store: contention, reentrancy,
and the locked write+commit path."""

import json
import threading
import time

import pytest

from repro.gcm.atmosphere import atmosphere_model
from repro.recover import (
    CheckpointLockTimeout,
    CoordinatedCheckpointStore,
    FileLock,
)
from repro.recover.checkpoint import LOCK_NAME, MANIFEST_NAME


def small_model():
    return atmosphere_model(nx=8, ny=4, nz=2, px=2, py=1, dt=600.0)


class TestFileLock:
    def test_two_instances_conflict(self, tmp_path):
        # flock conflicts apply across file descriptions even within one
        # process, so two instances model two checkpointing processes
        a = FileLock(tmp_path / "lk", timeout_s=0.2, poll_s=0.01)
        b = FileLock(tmp_path / "lk", timeout_s=0.2, poll_s=0.01)
        a.acquire()
        with pytest.raises(CheckpointLockTimeout, match="could not lock"):
            b.acquire()
        a.release()
        b.acquire()  # free again
        b.release()

    def test_reentrant_within_one_instance(self, tmp_path):
        lock = FileLock(tmp_path / "lk")
        with lock:
            with lock:  # write_shards inside checkpoint(): same holder
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_contender_proceeds_after_release(self, tmp_path):
        lock = FileLock(tmp_path / "lk", timeout_s=5.0, poll_s=0.005)
        other = FileLock(tmp_path / "lk", timeout_s=5.0, poll_s=0.005)
        other.acquire()
        acquired_at = {}

        def contend():
            lock.acquire()
            acquired_at["t"] = time.monotonic()
            lock.release()

        thread = threading.Thread(target=contend)
        thread.start()
        time.sleep(0.15)
        released_at = time.monotonic()
        other.release()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert acquired_at["t"] >= released_at


class TestStoreLocking:
    def test_store_operations_create_and_release_lock(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        record = store.write_shards({"atm": small_model()}, window=0)
        store.commit(record)
        assert (tmp_path / LOCK_NAME).exists()
        assert not store.lock.held  # released after each operation

    def test_contended_commit_times_out_not_interleaves(self, tmp_path):
        """A second checkpointer cannot slip a MANIFEST commit inside
        another process's write window — the contended path."""
        store_a = CoordinatedCheckpointStore(tmp_path, lock_timeout_s=5.0)
        store_b = CoordinatedCheckpointStore(tmp_path, lock_timeout_s=0.2)
        model = small_model()
        record = store_b.write_shards({"atm": model}, window=0)
        store_a.lock.acquire()  # "process A" holds the store
        try:
            with pytest.raises(CheckpointLockTimeout):
                store_b.commit(record)
            assert store_b.latest_good() is None  # nothing half-committed
        finally:
            store_a.lock.release()
        store_b.commit(record)  # lock free: commit lands
        assert store_b.latest_good().window == 0

    def test_checkpoint_spans_write_and_commit_under_one_hold(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path)
        record = store.checkpoint({"atm": small_model()}, window=3)
        assert record.committed
        got = store.latest_good()
        assert got is not None and got.window == 3
        manifest = json.loads((got.directory / MANIFEST_NAME).read_text())
        assert manifest["window"] == 3

    def test_blocked_writer_waits_then_succeeds(self, tmp_path):
        store = CoordinatedCheckpointStore(tmp_path, lock_timeout_s=5.0)
        holder = FileLock(tmp_path / LOCK_NAME, timeout_s=1.0)
        holder.acquire()
        done = {}

        def write():
            record = store.checkpoint({"atm": small_model()}, window=1)
            done["committed"] = record.committed

        thread = threading.Thread(target=write)
        thread.start()
        time.sleep(0.1)
        assert "committed" not in done  # parked on the lock
        holder.release()
        thread.join(timeout=30.0)
        assert done.get("committed") is True
