"""Phi-accrual suspicion: slow is suspected, only dead is declared."""

import pytest

from repro.recover.membership import (
    PEER_ALIVE,
    PEER_DEAD,
    PEER_SUSPECT,
    PhiAccrualDetector,
    SuspicionConfig,
)

PERIOD = 50e-6
TIMEOUT = 250e-6


def warm_detector(n=40, period=PERIOD):
    det = PhiAccrualDetector()
    t = 0.0
    for _ in range(n):
        t += period
        det.heard(1, t)
    return det, t


class TestConfig:
    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError, match="phi_suspect < phi_dead"):
            SuspicionConfig(phi_suspect=9.0, phi_dead=2.0)

    def test_window_and_samples_floors(self):
        with pytest.raises(ValueError, match="window"):
            SuspicionConfig(window=1)
        with pytest.raises(ValueError, match="min_samples"):
            SuspicionConfig(min_samples=1)
        with pytest.raises(ValueError, match="k_dead"):
            SuspicionConfig(k_dead=0.5)


class TestWarmup:
    def test_no_history_means_alive(self):
        det = PhiAccrualDetector()
        assert det.phi(1, 1.0) == 0.0
        assert det.state(1, 1.0, TIMEOUT) == PEER_ALIVE

    def test_fixed_timeout_governs_before_min_samples(self):
        det = PhiAccrualDetector()
        det.heard(1, 0.0)
        det.heard(1, PERIOD)  # one interval < min_samples
        assert det.state(1, PERIOD * 2, TIMEOUT) == PEER_ALIVE
        assert det.state(1, PERIOD + TIMEOUT * 1.1, TIMEOUT) == PEER_DEAD


class TestAdaptiveClassification:
    def test_on_time_beacons_stay_alive(self):
        det, t = warm_detector()
        assert det.state(1, t + PERIOD, TIMEOUT) == PEER_ALIVE

    def test_moderate_silence_is_suspicion_not_death(self):
        det, t = warm_detector()
        # 4 periods of silence: phi is enormous (learned std is tiny)
        # but the k_dead * mean silence gate has not been cleared.
        silence = 4 * PERIOD
        assert det.phi(1, t + silence) >= det.config.phi_dead
        assert det.state(1, t + silence, TIMEOUT) == PEER_SUSPECT

    def test_prolonged_silence_is_declared(self):
        det, t = warm_detector()
        silence = (det.config.k_dead + 1.5) * PERIOD
        assert det.state(1, t + silence, TIMEOUT) == PEER_DEAD

    def test_slow_but_steady_peer_adapts_back_to_alive(self):
        # A peer that settles at 3x the period keeps tripping a fixed
        # 250us timeout's half-way mark but must re-learn as normal.
        det, t = warm_detector()
        for _ in range(40):
            t += 3 * PERIOD
            det.heard(1, t)
        assert det.mean_interval(1) == pytest.approx(3 * PERIOD, rel=0.3)
        assert det.state(1, t + 3 * PERIOD, TIMEOUT) == PEER_ALIVE

    def test_learned_window_is_bounded(self):
        det, _ = warm_detector(n=500)
        assert det.samples(1) == det.config.window


class TestDeterminism:
    def test_identical_streams_identical_verdicts(self):
        a, ta = warm_detector()
        b, tb = warm_detector()
        assert ta == tb
        for k in range(1, 12):
            now = ta + k * PERIOD / 2
            assert a.phi(1, now) == b.phi(1, now)
            assert a.state(1, now, TIMEOUT) == b.state(1, now, TIMEOUT)
