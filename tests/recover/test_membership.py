"""Heartbeat failure detection: timing bounds, idempotence, fail-stop."""

import pytest

from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.recover import HeartbeatConfig, Membership
from repro.recover.membership import HeartbeatService


def make_service(n_nodes=4, config=None):
    cluster = HyadesCluster(HyadesConfig(n_nodes=n_nodes))
    membership = Membership(list(range(n_nodes)))
    cluster.fabric.crash_listeners.append(
        lambda node: membership.mark_crashed(node, cluster.engine.now)
    )
    service = HeartbeatService(cluster, membership, config)
    return cluster, membership, service


class TestHeartbeatConfig:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period"):
            HeartbeatConfig(period=0.0)

    def test_rejects_timeout_below_twice_period(self):
        with pytest.raises(ValueError, match="twice the period"):
            HeartbeatConfig(period=50e-6, timeout=80e-6)


class TestDetector:
    def test_quiet_cluster_declares_nobody(self):
        cluster, membership, service = make_service()
        service.arm()
        cluster.engine.run(until=2e-3)
        assert membership.dead == {}
        assert service.beacons_sent > 0
        assert service.beacons_heard > 0

    def test_crash_declared_within_latency_bound(self):
        """A silent node is declared within timeout + period (+ the
        deterministic detector stagger)."""
        cluster, membership, service = make_service()
        engine = cluster.engine
        cfg = service.config
        crash_at = 1.1e-3

        def killer():
            yield engine.timeout(crash_at)
            cluster.fabric.kill_endpoint(2)

        engine.process(killer(), name="killer", daemon=True)
        service.arm()
        engine.run(until=crash_at + 5 * cfg.timeout, stop_when=lambda: 2 in membership.dead)
        assert 2 in membership.dead
        record = membership.dead[2]
        latency = record.declared_at - crash_at
        assert 0 < latency <= cfg.timeout + 2 * cfg.period
        assert record.crashed_at == pytest.approx(crash_at)
        assert record.declared_by != 2

    def test_declaration_is_idempotent_and_notifies_once(self):
        cluster, membership, service = make_service()
        seen = []
        membership.on_declared.append(seen.append)
        engine = cluster.engine

        def killer():
            yield engine.timeout(0.5e-3)
            cluster.fabric.kill_endpoint(1)

        engine.process(killer(), name="killer", daemon=True)
        service.arm()
        # Run well past declaration: every node's detector times node 1
        # out, but only the first declaration counts.
        engine.run(until=3e-3)
        assert [r.node for r in seen] == [1]
        assert membership.declare_dead(1, by=0, when=engine.now, reason="again") is None
        assert [r.node for r in seen] == [1]

    def test_dead_node_falls_silent(self):
        """Fail-stop: after the crash the dead node sends no beacons."""
        cluster, membership, service = make_service()
        engine = cluster.engine

        def killer():
            yield engine.timeout(0.5e-3)
            cluster.fabric.kill_endpoint(3)

        engine.process(killer(), name="killer", daemon=True)
        service.arm()
        engine.run(until=2e-3)
        # Survivors never hear node 3 after its death.
        for observer in (0, 1, 2):
            assert service.last_seen[observer].get(3, 0.0) <= 0.5e-3
