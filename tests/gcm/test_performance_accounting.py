"""Tests tying the GCM's measured virtual times to the analytic model.

This is the Section 5.2/5.3 methodology turned inward: the model's own
phase breakdown must match what the cost models predict for its
configuration — the reproduction validating itself the way the paper
validated its model against the real machine.
"""

import numpy as np
import pytest

from repro.gcm.ocean import ocean_model
from repro.network.costmodel import arctic_cost_model


@pytest.fixture(scope="module")
def run():
    m = ocean_model(nx=64, ny=32, nz=8, px=2, py=2, dt=900.0, cpus_per_node=2)
    m.run(6)
    return m


class TestPhaseBreakdown:
    def test_phases_sum_to_step(self, run):
        for h in run.history:
            # correction/tracer compute is charged after DS; it is part
            # of t_step but not of the three named phases
            assert h.t_ps_exch + h.t_ps_compute + h.t_ds <= h.t_step + 1e-12
            assert h.t_step > 0

    def test_ps_exchange_matches_cost_model(self, run):
        """The measured per-step PS exchange equals 5 x texchxyz for
        this configuration's tile geometry."""
        cm = arctic_cost_model()
        edges = run.decomp.edge_bytes(nz=8, rank=0)  # all tiles equivalent here?
        worst_edges = max(
            (run.decomp.edge_bytes(nz=8, rank=r) for r in range(run.decomp.n_ranks)),
            key=sum,
        )
        expected = 5 * cm.exchange_time(worst_edges, mixmode=True)
        measured = run.performance_breakdown()["tps_exch"]
        assert measured == pytest.approx(expected, rel=0.05)

    def test_ps_compute_matches_flop_accounting(self, run):
        """tps_compute = (PS flops per rank) / Fps for the G-term part."""
        hist = run.history[1:]
        # flops charged during the G-term phase only (before DS);
        # reconstruct from stats: compute time at Fps
        measured = run.performance_breakdown()["tps_compute"]
        # bound: the G-term phase is most of the PS flops
        total_ps_time = np.mean([h.flops_ps for h in hist]) / run.decomp.n_ranks / 50e6
        assert 0.5 * total_ps_time < measured < total_ps_time

    def test_tds_per_iteration_matches_model(self, run):
        cm = arctic_cost_model()
        bd = run.performance_breakdown()
        ds_rank = max(
            range(run.ds_decomp.n_ranks),
            key=lambda r: sum(run.ds_decomp.edge_bytes(nz=1, width=1, rank=r)),
        )
        texchxy = cm.exchange_time(run.ds_decomp.edge_bytes(nz=1, width=1, rank=ds_rank))
        tgsum = cm.gsum_time(run.runtime.n_nodes, smp=True)
        hist = run.history[1:]
        ni = bd["ni"]
        nds_nxy = np.mean([h.flops_ds for h in hist]) / ni / run.ds_decomp.n_ranks
        expected = nds_nxy / 60e6 + 2 * texchxy + 2 * tgsum
        assert bd["tds"] == pytest.approx(expected, rel=0.10)

    def test_trun_prediction_from_own_parameters(self, run):
        """Eq. 11 with the run's own measured parameters predicts the
        run's virtual elapsed time within a few percent."""
        bd = run.performance_breakdown()
        n_more = 5
        predicted_more = n_more * bd["t_step"]
        before = run.runtime.elapsed
        run.run(n_more)
        observed_more = run.runtime.elapsed - before
        assert predicted_more == pytest.approx(observed_more, rel=0.05)

    def test_breakdown_empty_before_stepping(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        assert m.performance_breakdown() == {}
