"""Fig. 10 caption: "Because it is based on the same kernel, the
atmospheric counterpart has an almost identical profile."  The two
isomorphs must run the same numerical kernel with the same cost
structure — only EOS, forcing and configuration differ."""

import numpy as np
import pytest

from repro.gcm.atmosphere import atmosphere_model
from repro.gcm.ocean import ocean_model


@pytest.fixture(scope="module")
def pair():
    kw = dict(nx=32, ny=16, px=2, py=2, dt=600.0)
    atm = atmosphere_model(nz=5, **kw)
    ocn = ocean_model(nz=5, **kw)
    atm.run(4)
    ocn.run(4)
    return atm, ocn


def test_per_cell_ps_flops_nearly_identical(pair):
    atm, ocn = pair
    cells = 32 * 16 * 5

    def nps(m):
        return np.mean([h.flops_ps for h in m.history[1:]]) / cells

    # identical kernel; the only flop difference is the EOS (6 vs 5
    # flops/cell) and physics package, a few percent of the total
    assert nps(atm) == pytest.approx(nps(ocn), rel=0.10)


def test_same_communication_pattern(pair):
    atm, ocn = pair
    for a, o in zip(atm.history, ocn.history):
        pass
    sa, so = atm.runtime.stats[0], ocn.runtime.stats[0]
    assert sa.n_exchanges - 2 * sum(h.ni for h in atm.history) == 5 * 4
    assert so.n_exchanges - 2 * sum(h.ni for h in ocn.history) == 5 * 4
    # identical bytes per step and rank (same grid, same 5-field pattern)
    assert sa.bytes_exchanged == so.bytes_exchanged


def test_same_step_cost_structure(pair):
    atm, ocn = pair
    bd_a = atm.performance_breakdown()
    bd_o = ocn.performance_breakdown()
    # identical exchange cost; compute within the EOS/physics margin
    assert bd_a["tps_exch"] == pytest.approx(bd_o["tps_exch"], rel=1e-9)
    assert bd_a["tps_compute"] == pytest.approx(bd_o["tps_compute"], rel=0.10)


def test_isomorphs_differ_only_in_physics_fields(pair):
    atm, ocn = pair
    assert atm.is_atmosphere and not ocn.is_atmosphere
    assert atm.config.tracer_name == "q"
    assert ocn.config.tracer_name == "salt"
