"""Tests for the non-hydrostatic extension (Section 3's general kernel)."""

import numpy as np
import pytest

from repro.gcm import diagnostics as diag
from repro.gcm.cg import preconditioned_cg
from repro.gcm.grid import Grid, GridParams
from repro.gcm.nonhydrostatic import NonHydrostaticOperator, divergence3
from repro.gcm.ocean import ocean_model
from repro.gcm.operators import FlopCounter
from repro.parallel.exchange import exchange_halos
from repro.parallel.tiling import Decomposition


def make_operator(nx=16, ny=8, nz=4, px=2, py=2):
    g = Grid(
        GridParams(nx=nx, ny=ny, nz=nz, lat0=-40, lat1=40, total_depth=1000.0),
        Decomposition(nx, ny, px, py, olx=1),
    )
    return g, NonHydrostaticOperator(g)


def random_field(grid, seed):
    rng = np.random.default_rng(seed)
    tiles = []
    for t in grid.decomp.tiles:
        a = t.alloc3d(grid.nz)
        a[(slice(None),) + t.interior] = rng.standard_normal((grid.nz, t.ny, t.nx))
        tiles.append(a)
    exchange_halos(grid.decomp, tiles, width=1)
    return tiles


class TestOperator:
    def test_symmetric(self):
        g, ell = make_operator()
        fc = FlopCounter()
        x = random_field(g, 1)
        y = random_field(g, 2)
        ax, ay = ell.apply(x, fc), ell.apply(y, fc)

        def dot(a, b):
            return sum(
                float(np.sum(a[r][(Ellipsis,) + t.interior] * b[r][(Ellipsis,) + t.interior]))
                for r, t in enumerate(g.decomp.tiles)
            )

        assert dot(x, ay) == pytest.approx(dot(ax, y), rel=1e-10)

    def test_negative_semidefinite(self):
        g, ell = make_operator()
        fc = FlopCounter()
        for seed in range(3):
            x = random_field(g, seed)
            ax = ell.apply(x, fc)
            quad = sum(
                float(np.sum(x[r][(Ellipsis,) + t.interior] * ax[r][(Ellipsis,) + t.interior]))
                for r, t in enumerate(g.decomp.tiles)
            )
            assert quad <= 1e-9

    def test_constant_nullspace(self):
        g, ell = make_operator()
        fc = FlopCounter()
        ones = [np.ones(t.shape3d(g.nz)) for t in g.decomp.tiles]
        a1 = ell.apply(ones, fc)
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            interior = a1[r][:, o : o + t.ny, o : o + t.nx]
            wet = ell.wet[r][:, o : o + t.ny, o : o + t.nx]
            assert np.abs(interior[wet]).max() < 1e-9

    def test_vertical_coupling_present(self):
        """A vertically-varying field must feel the vertical terms."""
        g, ell = make_operator()
        fc = FlopCounter()
        x = [np.ones(t.shape3d(g.nz)) for t in g.decomp.tiles]
        for a in x:
            a[0] = 2.0  # jump across the first interior face
        ax = ell.apply(x, fc)
        o = g.decomp.olx
        assert np.abs(ax[0][:2, o + 1, o + 1]).max() > 0

    def test_cg_solves_manufactured_3d(self):
        g, ell = make_operator()
        fc = FlopCounter()
        x_true = random_field(g, 7)
        rhs = ell.apply(x_true, fc)
        # the vertical/lateral conductance anisotropy (~1e5) makes this
        # ill-conditioned; drive CG hard and accept a loose solution
        # tolerance (the residual-norm convergence itself is asserted)
        res = preconditioned_cg(ell, rhs, fc, tol=1e-13, maxiter=5000)
        assert res.converged
        # compare up to the constant nullspace
        o = g.decomp.olx

        def demean(tiles):
            s = n = 0.0
            for r, t in enumerate(g.decomp.tiles):
                sl = (slice(None), slice(o, o + t.ny), slice(o, o + t.nx))
                s += float(np.sum(tiles[r][sl]))
                n += tiles[r][sl].size
            return [a - s / n for a in tiles]

        got, want = demean(res.x), demean(x_true)
        for r, t in enumerate(g.decomp.tiles):
            sl = (slice(None), slice(o, o + t.ny), slice(o, o + t.nx))
            np.testing.assert_allclose(got[r][sl], want[r][sl], atol=1e-4)


class TestNonHydrostaticModel:
    @pytest.fixture(scope="class")
    def nh(self):
        m = ocean_model(
            nx=32, ny=16, nz=6, px=2, py=2, dt=600.0, nonhydrostatic=True, cg_tol=1e-10
        )
        m.run(5)
        return m

    def test_stable_and_finite(self, nh):
        assert diag.is_finite(nh)
        assert all(h.nh_converged for h in nh.history)

    def test_three_d_divergence_vanishes(self, nh):
        u = [a.copy() for a in nh.state["u"]]
        v = [a.copy() for a in nh.state["v"]]
        w = [a.copy() for a in nh.state["w"]]
        for f in (u, v, w):
            exchange_halos(nh.decomp, f, width=1)
        d3 = divergence3(nh.nh_operator, u, v, w)
        typical = abs(nh.state.to_global("u")).max() * nh.grid.drf[0] * 3.5e5
        assert d3 < 1e-4 * typical

    def test_w_scale_is_nonhydrostatically_small(self, nh):
        """At hydrostatic aspect ratios (350 km x 170 m cells) the
        projected w must be orders of magnitude below u."""
        w = np.abs(nh.state.to_global("w")).max()
        u = np.abs(nh.state.to_global("u")).max()
        assert w < 1e-2 * u

    def test_rigid_lid_face_stays_zero(self, nh):
        w = nh.state.to_global("w")
        assert np.abs(w[0]).max() == 0.0

    def test_nh_accounting_recorded(self, nh):
        h = nh.history[-1]
        assert h.ni_nh > 0
        assert h.flops_nh > 0
        assert h.t_nh > 0

    def test_hydrostatic_limit_agreement(self):
        """At large scales the non-hydrostatic solution tracks the
        hydrostatic one (the paper: 'In the hydrostatic limit the
        non-hydrostatic pressure component is negligible')."""
        kw = dict(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, cg_tol=1e-11)
        a = ocean_model(nonhydrostatic=False, **kw)
        b = ocean_model(nonhydrostatic=True, **kw)
        a.run(4)
        b.run(4)
        ua, ub = a.state.to_global("u"), b.state.to_global("u")
        scale = np.abs(ua).max()
        assert np.abs(ua - ub).max() < 0.02 * scale

    def test_nh_costs_more_than_hydrostatic(self):
        kw = dict(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        a = ocean_model(nonhydrostatic=False, **kw)
        b = ocean_model(nonhydrostatic=True, **kw)
        a.run(3)
        b.run(3)
        assert b.runtime.elapsed > a.runtime.elapsed

    def test_decomposition_invariance_nh(self):
        def run(px, py):
            m = ocean_model(
                nx=32, ny=16, nz=4, px=px, py=py, dt=600.0,
                nonhydrostatic=True, cg_tol=1e-12,
            )
            m.run(3)
            return m.state.to_global("u")

        ua, ub = run(1, 1), run(2, 2)
        scale = np.abs(ua).max() + 1e-30
        assert np.abs(ua - ub).max() < 1e-9 * scale
