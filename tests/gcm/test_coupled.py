"""Tests for the atmosphere-ocean coupler (Section 5.1)."""

import numpy as np
import pytest

from repro.gcm import diagnostics as diag
from repro.gcm.coupled import CoupledModel, coupled_model


@pytest.fixture(scope="module")
def cm():
    model = coupled_model(
        nx=32, ny=16, nz_atm=4, nz_ocn=6, px=2, py=2, dt=600.0, coupling_interval=2
    )
    model.run(3)
    return model


class TestConstruction:
    def test_mismatched_grids_rejected(self):
        from repro.gcm.atmosphere import atmosphere_model
        from repro.gcm.ocean import ocean_model

        atm = atmosphere_model(nx=32, ny=16, nz=4, px=2, py=2)
        ocn = ocean_model(nx=16, ny=8, nz=4, px=2, py=2)
        with pytest.raises(ValueError, match="lateral grid"):
            CoupledModel(atm, ocn)

    def test_initial_coupling_happens_at_build(self):
        model = coupled_model(nx=32, ny=16, nz_atm=4, nz_ocn=6, px=2, py=2)
        assert model.couplings == 1
        assert "sst" in model.atmosphere.coupling
        assert "taux" in model.ocean.coupling


class TestCoupling(object):
    def test_components_advance_in_lockstep(self, cm):
        assert cm.atmosphere.state.step_count == cm.ocean.state.step_count == 6

    def test_sst_flows_ocean_to_atmosphere(self, cm):
        sst_o = cm.ocean.surface_temperature()
        o = cm.atmosphere.decomp.olx
        tiles = cm.atmosphere.coupling["sst"]
        rebuilt = np.zeros_like(sst_o)
        for r, t in enumerate(cm.atmosphere.decomp.tiles):
            rebuilt[t.y0 : t.y0 + t.ny, t.x0 : t.x0 + t.nx] = tiles[r][
                o : o + t.ny, o : o + t.nx
            ]
        np.testing.assert_allclose(rebuilt, sst_o)

    def test_wind_stress_from_bulk_formula(self, cm):
        ks = cm.atmosphere.grid.nz - 1
        ua = cm.atmosphere.state.to_global("u")[ks]
        taux_tiles = cm.ocean.coupling["taux"]
        o = cm.ocean.decomp.olx
        rebuilt = np.zeros_like(ua)
        for r, t in enumerate(cm.ocean.decomp.tiles):
            rebuilt[t.y0 : t.y0 + t.ny, t.x0 : t.x0 + t.nx] = taux_tiles[r][
                o : o + t.ny, o : o + t.nx
            ]
        # stress sign follows the wind direction wherever wind is nonzero
        nz_mask = np.abs(ua) > 1e-12
        assert np.all(np.sign(rebuilt[nz_mask]) == np.sign(ua[nz_mask]))

    def test_both_components_stay_finite(self, cm):
        assert diag.is_finite(cm.atmosphere)
        assert diag.is_finite(cm.ocean)

    def test_elapsed_is_max_of_components(self, cm):
        assert cm.elapsed == max(
            cm.atmosphere.runtime.elapsed, cm.ocean.runtime.elapsed
        )

    def test_combined_rate_positive(self, cm):
        assert cm.combined_sustained_flops() > 0

    def test_coupling_interval_respected(self):
        model = coupled_model(
            nx=32, ny=16, nz_atm=4, nz_ocn=6, px=2, py=2, coupling_interval=3
        )
        model.step_coupled()
        assert model.atmosphere.state.step_count == 3
        assert model.couplings == 2  # initial + one


class TestCouplingPhysics:
    def test_surface_cold_anomaly_decays_toward_control(self):
        """Chilled surface air over a warm ocean: the coupled surface
        fluxes (+ relaxation and mixing) must damp the anomaly relative
        to an unperturbed control run."""

        def build(anomaly):
            m = coupled_model(
                nx=32, ny=16, nz_atm=4, nz_ocn=6, px=2, py=2, dt=600.0,
                coupling_interval=2,
            )
            if anomaly:
                th = m.atmosphere.state.to_global("theta")
                th[m.atmosphere.grid.nz - 1] -= 5.0
                m.atmosphere.state.set_from_global("theta", th)
                m.exchange_boundary_conditions()
            return m

        control, perturbed = build(False), build(True)
        ks = control.atmosphere.grid.nz - 1

        def gap():
            a = perturbed.atmosphere.state.to_global("theta")[ks].mean()
            c = control.atmosphere.state.to_global("theta")[ks].mean()
            return c - a

        g0 = gap()
        control.run(4)
        perturbed.run(4)
        g1 = gap()
        assert g0 == pytest.approx(5.0, abs=0.01)
        assert 0 < g1 < g0  # damped, not amplified or overshot
