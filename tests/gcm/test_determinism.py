"""Determinism and vertical-grid tests."""

import numpy as np
import pytest

from repro.gcm.grid import GridParams
from repro.gcm.ocean import ocean_model
from repro.gcm.topography import stretched_layers


class TestBitwiseDeterminism:
    """Numerical experiments must be exactly repeatable — the property
    the canonical-order butterfly sum exists to protect (Section 4.2)."""

    def test_identical_runs_bitwise_equal(self):
        def run():
            m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
            m.run(6)
            return m

        a, b = run(), run()
        for name in ("u", "v", "theta", "tracer", "ps"):
            ga, gb = a.state.to_global(name), b.state.to_global(name)
            np.testing.assert_array_equal(ga, gb, err_msg=name)
        assert a.runtime.elapsed == b.runtime.elapsed
        assert [h.ni for h in a.history] == [h.ni for h in b.history]

    def test_des_runs_bitwise_deterministic(self):
        from repro.hardware.cluster import HyadesCluster
        from repro.parallel.des_collectives import des_global_sum

        def run():
            return des_global_sum(HyadesCluster(), [0.1 * i for i in range(16)])

        ra, ta = run()
        rb, tb = run()
        assert ra == rb and ta == tb


class TestStretchedLayers:
    def test_sums_exactly_to_depth(self):
        drf = stretched_layers(30, 4000.0, 10.0)
        assert drf.sum() == pytest.approx(4000.0, abs=1e-9)
        assert len(drf) == 30

    def test_monotone_thickening(self):
        drf = stretched_layers(20, 4000.0, 10.0)
        assert np.all(np.diff(drf) > 0)
        assert drf[0] == pytest.approx(10.0, rel=0.01)

    def test_degenerate_falls_back_to_uniform(self):
        drf = stretched_layers(4, 100.0, 50.0)  # cannot stretch
        np.testing.assert_allclose(drf, 25.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stretched_layers(0, 100.0, 1.0)
        with pytest.raises(ValueError):
            stretched_layers(5, -1.0, 1.0)

    def test_model_runs_on_stretched_grid(self):
        from repro.gcm import diagnostics as diag

        drf = stretched_layers(8, 4000.0, 50.0)
        grid = GridParams(nx=32, ny=16, nz=8, lat0=-80, lat1=80, drf=tuple(drf))
        m = ocean_model(nx=32, ny=16, nz=8, px=2, py=2, dt=600.0, grid=grid)
        m.run(4)
        assert diag.is_finite(m)
        assert m.grid.drf[0] < m.grid.drf[-1]
