"""End-to-end interconnect comparison through the full GCM stack.

The paper's bottom line — the same climate code is viable on Arctic and
hopeless on commodity Ethernet — must emerge from the *integrated*
model+runtime, not just from the standalone PFPP arithmetic.
"""

import pytest

from repro.gcm import diagnostics as diag
from repro.gcm.ocean import ocean_model
from repro.network.costmodel import (
    arctic_cost_model,
    fast_ethernet_cost_model,
    gigabit_ethernet_cost_model,
)


def run_on(cost_model, steps=4):
    m = ocean_model(
        nx=64, ny=32, nz=8, px=2, py=2, dt=900.0, cost_model=cost_model
    )
    m.run(steps)
    return m


@pytest.fixture(scope="module")
def runs():
    return {
        "arctic": run_on(arctic_cost_model()),
        "ge": run_on(gigabit_ethernet_cost_model()),
        "fe": run_on(fast_ethernet_cost_model()),
    }


class TestInterconnectIntegration:
    def test_identical_physics_on_every_interconnect(self, runs):
        """The interconnect changes time, never answers."""
        import numpy as np

        ref = runs["arctic"].state.to_global("theta")
        for name in ("ge", "fe"):
            np.testing.assert_array_equal(
                runs[name].state.to_global("theta"), ref, err_msg=name
            )

    def test_virtual_time_ordering(self, runs):
        assert runs["arctic"].runtime.elapsed < runs["ge"].runtime.elapsed
        assert runs["ge"].runtime.elapsed < runs["fe"].runtime.elapsed

    def test_slowdown_magnitudes(self, runs):
        """FE is an order of magnitude slower end-to-end; GE a few x —
        the same regime the one-year projection in the interconnect
        study reports."""
        t_a = runs["arctic"].runtime.elapsed
        assert 3 < runs["fe"].runtime.elapsed / t_a < 40  # (16-rank production: ~14x)
        assert 1.5 < runs["ge"].runtime.elapsed / t_a < 10

    def test_comm_fraction_flips(self, runs):
        """Arctic: mostly compute.  FE: mostly communication — the
        quantitative content of 'COTS processors significantly
        outperform COTS interconnects' (Section 6)."""

        def comm_fraction(m):
            st = max(m.runtime.stats, key=lambda s: s.compute_time + s.comm_time)
            return st.comm_time / (st.comm_time + st.compute_time)

        assert comm_fraction(runs["arctic"]) < 0.5
        assert comm_fraction(runs["fe"]) > 0.7

    def test_all_runs_finite(self, runs):
        for m in runs.values():
            assert diag.is_finite(m)
