"""Tests of the finite-volume kernels against analytic identities."""

import numpy as np
import pytest

from repro.gcm import operators as op
from repro.gcm.grid import Grid, GridParams
from repro.gcm.operators import FlopCounter
from repro.parallel.exchange import exchange_halos
from repro.parallel.tiling import Decomposition


def make_grid(nx=32, ny=16, nz=4, olx=3, **kw):
    """Single-tile grid (periodic x wraps exactly, so roll is exact)."""
    p = GridParams(nx=nx, ny=ny, nz=nz, lat0=-60.0, lat1=60.0, **kw)
    d = Decomposition(nx, ny, 1, 1, olx=olx)
    return Grid(p, d)


def interior(grid, a):
    o = grid.decomp.olx
    t = grid.decomp.tile(0)
    return a[..., o : o + t.ny, o : o + t.nx]


def wet_interior_sum(grid, a, vol=True):
    o = grid.decomp.olx
    t = grid.decomp.tile(0)
    sl = (slice(None), slice(o, o + t.ny), slice(o, o + t.nx))
    w = grid.cell_volumes(0)[sl] if vol else 1.0
    return float(np.sum(a[sl] * w))


class TestTransportsAndContinuity:
    def test_uniform_zonal_flow_is_nondivergent(self):
        g = make_grid()
        fc = FlopCounter()
        u = np.ones(g.decomp.tile(0).shape3d(g.nz))
        v = np.zeros_like(u)
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        # zonal transport varies only with latitude -> d/dx = 0 -> w = 0
        assert np.abs(interior(g, wflux)).max() < 1e-6

    def test_convergence_produces_upwelling(self):
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        o = g.decomp.olx
        u = np.zeros(t.shape3d(g.nz))
        v = np.zeros_like(u)
        # converging zonal flow in the bottom layer around mid-tile
        mid = o + t.nx // 2
        u[-1, :, :mid] = 1.0
        u[-1, :, mid:] = -1.0
        exchange_halos(g.decomp, [u])
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        # flow converges in the column just west of the sign change
        # (east face carries -1, west face +1): upward flux through the
        # top of the bottom layer there
        col = wflux[-1, o + 2, mid - 1]
        assert col > 0

    def test_wflux_zero_at_floor_implied(self):
        g = make_grid()
        fc = FlopCounter()
        rng = np.random.default_rng(0)
        t = g.decomp.tile(0)
        u = rng.standard_normal(t.shape3d(g.nz))
        v = rng.standard_normal(t.shape3d(g.nz))
        exchange_halos(g.decomp, [u])
        exchange_halos(g.decomp, [v])
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        hdiv = (op.xp(ut) - ut) + (op.yp(vt) - vt)
        # continuity: wflux[k] - wflux[k+1] = -hdiv[k]
        np.testing.assert_allclose(
            interior(g, wflux[:-1] - wflux[1:]), interior(g, -hdiv[:-1]), atol=1e-6
        )
        np.testing.assert_allclose(interior(g, wflux[-1]), interior(g, -hdiv[-1]), atol=1e-6)


class TestTracerAdvection:
    def test_constant_tracer_has_zero_tendency_in_closed_flow(self):
        """Advection of a constant field: G = -c * div(v) = 0 only for
        nondivergent flow; use zonal flow (nondivergent by symmetry)."""
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        u = np.ones(t.shape3d(g.nz))
        v = np.zeros_like(u)
        c = np.full_like(u, 7.0)
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        gc = op.advect_tracer(c, ut, vt, wflux, g, 0, fc)
        assert np.abs(interior(g, gc)).max() < 1e-12

    def test_advection_conserves_tracer_integral(self):
        """Sum of G * volume over a closed domain vanishes (flux form)."""
        g = make_grid()
        fc = FlopCounter()
        rng = np.random.default_rng(1)
        t = g.decomp.tile(0)
        u = rng.standard_normal(t.shape3d(g.nz))
        v = rng.standard_normal(t.shape3d(g.nz))
        c = rng.standard_normal(t.shape3d(g.nz))
        # close the walls: v through walls already masked by hfac_s
        for f in (u, v, c):
            exchange_halos(g.decomp, [f])
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        gc = op.advect_tracer(c, ut, vt, wflux, g, 0, fc)
        total = wet_interior_sum(g, gc)
        scale = wet_interior_sum(g, np.abs(gc))
        assert abs(total) < 1e-7 * (scale + 1e-30)

    def test_diffusion_conserves_and_smooths(self):
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        rng = np.random.default_rng(2)
        c = rng.standard_normal(t.shape3d(g.nz))
        exchange_halos(g.decomp, [c])
        gd = op.laplacian_diffusion(c, 1e4, g, 0, fc)
        total = wet_interior_sum(g, gd)
        scale = wet_interior_sum(g, np.abs(gd))
        assert abs(total) < 1e-7 * (scale + 1e-30)
        # diffusion reduces variance: d/dt sum(c^2) = 2 sum(c * Gd) < 0
        assert wet_interior_sum(g, c * gd) < 0

    def test_diffusion_of_constant_is_zero(self):
        g = make_grid()
        fc = FlopCounter()
        c = np.full(g.decomp.tile(0).shape3d(g.nz), 3.0)
        gd = op.laplacian_diffusion(c, 1e4, g, 0, fc)
        assert np.abs(interior(g, gd)).max() < 1e-12

    def test_vertical_diffusion_conserves_column(self):
        g = make_grid()
        fc = FlopCounter()
        rng = np.random.default_rng(3)
        c = rng.standard_normal(g.decomp.tile(0).shape3d(g.nz))
        gd = op.vertical_diffusion(c, 1e-4, g, 0, fc)
        colsum = np.sum(interior(g, gd) * g.drf[:, None, None], axis=0)
        assert np.abs(colsum).max() < 1e-12


class TestMomentum:
    def test_coriolis_does_no_work(self):
        """f(u x k) is perpendicular to the flow: global u*Gu + v*Gv = 0
        up to C-grid averaging error (small for smooth fields)."""
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        o = g.decomp.olx
        jj, ii = np.meshgrid(np.arange(t.shape2d[0]), np.arange(t.shape2d[1]), indexing="ij")
        smooth = np.sin(2 * np.pi * ii / t.nx)[None] * np.ones((g.nz, 1, 1))
        u = smooth.copy()
        v = 0.5 * smooth.copy()
        for f in (u, v):
            exchange_halos(g.decomp, [f])
        gu, gv = op.coriolis(u, v, g, 0, fc)
        work = wet_interior_sum(g, u * gu) + wet_interior_sum(g, v * gv)
        scale = wet_interior_sum(g, np.abs(u * gu)) + 1e-30
        # the simple 4-point averaging is only approximately energy
        # neutral near masked walls; bound the spurious work at 10 %
        assert abs(work) < 0.1 * scale

    def test_coriolis_turns_zonal_flow_equatorward_sh(self):
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        u = np.ones(t.shape3d(g.nz))
        v = np.zeros_like(u)
        exchange_halos(g.decomp, [u])
        gu, gv = op.coriolis(u, v, g, 0, fc)
        o = g.decomp.olx
        # southern hemisphere: f < 0, gv = -f u > 0 (northward)
        assert gv[0, o + 1, o + 5] > 0
        # northern hemisphere: gv < 0
        assert gv[0, o + t.ny - 2, o + 5] < 0

    def test_momentum_advection_conserves_total(self):
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        rng = np.random.default_rng(4)
        u = rng.standard_normal(t.shape3d(g.nz))
        v = rng.standard_normal(t.shape3d(g.nz))
        for f in (u, v):
            exchange_halos(g.decomp, [f])
        ut, vt = op.transports(u, v, g, 0, fc)
        wflux = op.vertical_transport(ut, vt, fc)
        gu = op.advect_u(u, ut, vt, wflux, g, 0, fc)
        o = g.decomp.olx
        sl = (slice(None), slice(o, o + t.ny), slice(o, o + t.nx))
        vol_u = g.hfac_w[0] * g.drf[:, None, None] * 0.5 * (g.ra[0] + op.xm(g.ra[0]))[None]
        total = float(np.sum((gu * vol_u)[sl]))
        scale = float(np.sum(np.abs(gu * vol_u)[sl])) + 1e-30
        assert abs(total) < 1e-6 * scale

    def test_viscosity_damps_kinetic_energy(self):
        g = make_grid()
        fc = FlopCounter()
        rng = np.random.default_rng(5)
        u = rng.standard_normal(g.decomp.tile(0).shape3d(g.nz))
        exchange_halos(g.decomp, [u])
        gu = op.viscosity_u(u, 1e4, 1e-3, g, 0, fc)
        assert wet_interior_sum(g, u * gu, vol=False) < 0


class TestPressure:
    def test_hydrostatic_constant_buoyancy_linear_profile(self):
        g = make_grid(nz=4)
        fc = FlopCounter()
        b = np.full(g.decomp.tile(0).shape3d(4), 0.01)
        phy = op.hydrostatic_pressure(b, g, fc)
        drf = g.drf[0]
        # phi[0] = -b*drf/2; each next level adds -b*drc
        assert phy[0].flat[0] == pytest.approx(-0.01 * drf / 2)
        assert phy[1].flat[0] == pytest.approx(-0.01 * (drf / 2 + drf))
        # equal spacing between consecutive levels
        d01 = phy[1] - phy[0]
        d12 = phy[2] - phy[1]
        np.testing.assert_allclose(d01, d12)

    def test_pressure_gradient_of_constant_is_zero(self):
        g = make_grid()
        fc = FlopCounter()
        p = np.full(g.decomp.tile(0).shape3d(g.nz), 5.0)
        gx, gy = op.pressure_gradient(p, g, 0, fc)
        assert np.abs(interior(g, gx)).max() < 1e-12
        assert np.abs(interior(g, gy)).max() < 1e-12

    def test_pressure_gradient_sign(self):
        g = make_grid()
        fc = FlopCounter()
        t = g.decomp.tile(0)
        p = np.zeros(t.shape3d(g.nz))
        ii = np.arange(t.shape2d[1])
        p[...] = ii[None, None, :] * 1.0  # increases eastward
        gx, _ = op.pressure_gradient(p, g, 0, fc)
        # force is -dp/dx < 0 (westward) where faces are open
        o = g.decomp.olx
        assert gx[0, o + 2, o + 2] < 0


class TestFlopCounter:
    def test_counts_accumulate(self):
        fc = FlopCounter()
        fc.add("a", 10)
        fc.add("a", 5)
        fc.add("b", 2.9)
        assert fc.total == 17
        assert fc.by_kernel == {"a": 15, "b": 2}

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.total == 6
        assert a.by_kernel == {"x": 3, "y": 3}

    def test_kernels_report_flops(self):
        g = make_grid()
        fc = FlopCounter()
        u = np.zeros(g.decomp.tile(0).shape3d(g.nz))
        v = np.zeros_like(u)
        op.transports(u, v, g, 0, fc)
        assert fc.total == 6 * u.size
        assert "transports" in fc.by_kernel
