"""Tests for the biharmonic (scale-selective) viscosity option."""

import numpy as np

from repro.gcm import operators as op
from repro.gcm.grid import Grid, GridParams
from repro.gcm.ocean import ocean_model
from repro.gcm.operators import FlopCounter
from repro.gcm.prognostic import DynamicsParams
from repro.parallel.exchange import exchange_halos
from repro.parallel.tiling import Decomposition


def make_grid(nx=32, ny=8):
    # near-equatorial band: cos(lat) ~ constant, so the damping-rate
    # measurement isolates the zonal wavenumber (metric variation in y
    # would otherwise leak into the long-wave biharmonic rate)
    return Grid(
        GridParams(nx=nx, ny=ny, nz=1, lat0=-4, lat1=4, total_depth=100.0),
        Decomposition(nx, ny, 1, 1, olx=3),
    )


def wave(grid, wavelength_cells: int):
    """A zonal sine wave of the given wavelength (in cells)."""
    t = grid.decomp.tile(0)
    o = grid.decomp.olx
    u = np.zeros(t.shape3d(1))
    ii = np.arange(t.nx)
    # fill every row INCLUDING the y halos so the field is truly
    # y-uniform (otherwise wall-edge y-derivatives dominate the damping)
    u[0, :, o : o + t.nx] = np.sin(2 * np.pi * ii / wavelength_cells)[None, :]
    exchange_halos(grid.decomp, [u])
    return u


def damping_rate(grid, u, ah, ah4):
    """|<u, G_visc>| / <u, u> over rows away from the walls.

    The biharmonic term implies extra friction at the wall-adjacent
    rows (the masked Laplacian vanishes beyond the wall, so its second
    difference jumps there); excluding two rows isolates the interior
    scale selectivity this test measures.
    """
    fc = FlopCounter()
    g = op.viscosity_u(u, ah, 0.0, grid, 0, fc, ah4=ah4)
    o = grid.decomp.olx
    t = grid.decomp.tile(0)
    sl = (0, slice(o + 2, o + t.ny - 2), slice(o, o + t.nx))
    return -float(np.sum(u[sl] * g[sl])) / float(np.sum(u[sl] ** 2))


class TestBiharmonic:
    def test_disabled_by_default(self):
        g = make_grid()
        u = wave(g, 8)
        fc = FlopCounter()
        with_default = op.viscosity_u(u, 1e4, 0.0, g, 0, fc)
        explicit_zero = op.viscosity_u(u, 1e4, 0.0, g, 0, fc, ah4=0.0)
        np.testing.assert_array_equal(with_default, explicit_zero)
        assert "biharmonic_u" not in fc.by_kernel

    def test_biharmonic_damps_energy(self):
        g = make_grid()
        u = wave(g, 4)
        assert damping_rate(g, u, 0.0, 1e15) > 0

    def test_scale_selectivity(self):
        """The biharmonic's damping-rate ratio between a 2-cell-scale
        wave and an 8-cell wave far exceeds the Laplacian's — it targets
        grid noise."""
        g = make_grid()
        short, long_ = wave(g, 4), wave(g, 16)
        lap_ratio = damping_rate(g, short, 1e4, 0.0) / damping_rate(g, long_, 1e4, 0.0)
        bih_ratio = damping_rate(g, short, 0.0, 1e15) / damping_rate(g, long_, 0.0, 1e15)
        assert bih_ratio > 3 * lap_ratio

    def test_model_runs_with_biharmonic(self):
        from repro.gcm import diagnostics as diag

        m = ocean_model(
            nx=32, ny=16, nz=4, px=2, py=2, dt=600.0,
            dynamics=DynamicsParams(ah=1e5, ah4=1e14),
        )
        m.run(4)
        assert diag.is_finite(m)

    def test_decomposition_invariance_with_biharmonic(self):
        """Ring depth 2 stays within the halo-3 budget: tiled results
        still match serial exactly."""

        def run(px, py):
            m = ocean_model(
                nx=32, ny=16, nz=4, px=px, py=py, dt=600.0, cg_tol=1e-12,
                dynamics=DynamicsParams(ah=1e5, ah4=1e14),
            )
            m.run(3)
            return m.state.to_global("u")

        ua, ub = run(1, 1), run(2, 2)
        scale = np.abs(ua).max() + 1e-30
        assert np.abs(ua - ub).max() < 1e-10 * scale
