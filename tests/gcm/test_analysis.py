"""Tests for the scientific analysis diagnostics."""

import numpy as np
import pytest

from repro.gcm.analysis import (
    IdealAgeTracer,
    barotropic_transport,
    overturning_streamfunction,
    zonal_mean,
)
from repro.gcm.ocean import ocean_model
from repro.gcm.topography import double_basin


@pytest.fixture(scope="module")
def spun():
    m = ocean_model(nx=32, ny=16, nz=6, px=2, py=2, dt=1800.0)
    m.run(30)
    return m


class TestZonalMean:
    def test_shape_and_values(self, spun):
        zm = zonal_mean(spun, "theta")
        assert zm.shape == (6, 16)
        # warm surface tropics, cold abyss
        assert np.nanmax(zm[0]) > np.nanmax(zm[-1])

    def test_land_columns_excluded(self):
        depth = double_basin(32, 16, depth=4000.0, continent_width=4, polar_caps=2)
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0, depth=depth)
        m.run(2)
        zm = zonal_mean(m, "theta")
        # polar cap rows are all-land: NaN
        assert np.all(np.isnan(zm[:, 0]))
        assert np.isfinite(zm[0, 8])


class TestOverturning:
    def test_psi_zero_at_surface_and_closed_at_bottom(self, spun):
        psi = overturning_streamfunction(spun)
        assert psi.shape == (7, 16)
        np.testing.assert_allclose(psi[0], 0.0)
        # rigid lid + non-divergent depth-integrated flow: the column's
        # net meridional transport is small -> Psi nearly closes at the
        # floor (zero at walls exactly)
        surface_scale = np.abs(psi).max() + 1e-12
        assert np.abs(psi[-1]).max() < 0.05 * surface_scale + 1e-9

    def test_wall_rows_carry_no_transport(self, spun):
        psi = overturning_streamfunction(spun)
        np.testing.assert_allclose(psi[:, 0], 0.0)  # southern wall faces

    def test_circulation_develops(self, spun):
        psi = overturning_streamfunction(spun)
        assert np.abs(psi).max() > 1e-4  # some overturning, in Sv


class TestBarotropicTransport:
    def test_shape(self, spun):
        tr = barotropic_transport(spun)
        assert tr.shape == (16, 32)

    def test_land_carries_nothing(self):
        depth = double_basin(32, 16, depth=4000.0, continent_width=4, polar_caps=1)
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0, depth=depth)
        m.run(3)
        tr = barotropic_transport(m)
        assert np.abs(tr[:, :4]).max() == 0.0


class TestIdealAge:
    def test_requires_attach(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0)
        tr = IdealAgeTracer(m)
        with pytest.raises(RuntimeError):
            tr.update()

    def test_attach_passivates_and_detach_restores_eos(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0)
        original = m.config.eos
        tr = IdealAgeTracer(m)
        tr.attach()
        assert m.config.eos.beta == 0.0
        tr.detach()
        assert m.config.eos is original

    def test_age_grows_below_fresh_surface(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0, physics=None)
        tracer = IdealAgeTracer(m)
        tracer.attach()
        n = 10
        for _ in range(n):
            m.step()
            tracer.update()
        from repro.gcm import diagnostics as diag

        assert diag.is_finite(m)  # the EOS was passivated: no blow-up
        prof = tracer.mean_age_profile()
        assert prof[0] == 0.0  # surface reset
        assert prof[-1] > 0.0
        # nothing can be older than the elapsed time (small slack for
        # the Adams-Bashforth extrapolation's transient overshoot)
        age = m.state.to_global("tracer")
        assert age.max() <= n * m.config.dt * (1 + 1e-4)

    def test_age_monotone_with_depth_initially(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0, physics=None)
        tracer = IdealAgeTracer(m)
        tracer.attach()
        for _ in range(6):
            m.step()
            tracer.update()
        prof = tracer.mean_age_profile()
        # before ventilation develops, deeper water is simply older
        assert all(np.diff(prof) >= -1e-9)


class TestLoadBalance:
    def test_aquaplanet_perfectly_balanced(self):
        from repro.gcm.analysis import load_balance_report

        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        rep = load_balance_report(m.grid)
        assert rep["imbalance"] == pytest.approx(1.0)
        assert rep["land_compute_fraction"] == pytest.approx(0.0)
        assert rep["idle_fraction"] == pytest.approx(0.0)
        assert sum(rep["wet_per_rank"]) == 32 * 16 * 4

    def test_land_creates_imbalance(self):
        from repro.gcm.analysis import load_balance_report

        depth = double_basin(32, 16, depth=4000.0, continent_width=8, polar_caps=2)
        # 8-wide tiles: some tiles land entirely on the continents
        m = ocean_model(nx=32, ny=16, nz=4, px=4, py=2, dt=600.0, depth=depth)
        rep = load_balance_report(m.grid)
        assert rep["imbalance"] > 1.0
        assert 0.0 < rep["land_compute_fraction"] < 1.0
        assert rep["wet_per_rank"] != sorted(set(rep["wet_per_rank"])) or True
        assert min(rep["wet_per_rank"]) < max(rep["wet_per_rank"])
