"""Longer integrations: stability, boundedness, solver behaviour.

The paper's experiments run for a model year (77760 steps); CI-scale
equivalents here run a few hundred steps on reduced grids and assert
the properties that make year-long runs possible at all.
"""

import numpy as np
import pytest

from repro.gcm import diagnostics as diag
from repro.gcm.atmosphere import atmosphere_model
from repro.gcm.ocean import ocean_model


class TestOceanLongRun:
    @pytest.fixture(scope="class")
    def run(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=1800.0)
        kes = []
        for _ in range(10):
            m.run(20)
            kes.append(diag.total_kinetic_energy(m))
        return m, kes

    def test_finite_after_200_steps(self, run):
        m, _ = run
        assert diag.is_finite(m)

    def test_kinetic_energy_bounded(self, run):
        """Forced-dissipative balance: KE must not grow without bound
        (no late doubling after spin-up)."""
        _, kes = run
        assert kes[-1] < 4 * max(kes[:5])

    def test_temperature_stays_physical(self, run):
        m, _ = run
        th = m.state.to_global("theta")
        assert -5.0 < th.min() and th.max() < 45.0

    def test_salinity_stays_physical(self, run):
        m, _ = run
        s = m.state.to_global("tracer")
        assert 30.0 < s.min() and s.max() < 40.0

    def test_solver_iterations_stay_bounded(self, run):
        m, _ = run
        late = [h.ni for h in m.history[-50:]]
        assert max(late) < m.config.cg_maxiter
        assert all(h.cg_converged for h in m.history[-50:])

    def test_cfl_stays_well_below_unity(self, run):
        m, _ = run
        assert diag.max_cfl(m) < 0.5


class TestAtmosphereLongRun:
    @pytest.fixture(scope="class")
    def run(self):
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=450.0)
        for _ in range(8):
            m.run(25)
        return m

    def test_finite_after_200_steps(self, run):
        assert diag.is_finite(run)

    def test_theta_bracketed_by_forcing(self, run):
        phys = run.config.physics
        th = run.state.to_global("theta")
        lo = phys.theta_ref - phys.dtheta_y - 40
        hi = phys.theta_ref + phys.dtheta_z + 40
        assert lo < th.min() and th.max() < hi

    def test_meridional_gradient_maintained(self, run):
        """Radiative forcing sustains the equator-pole contrast that
        drives the circulation (warm tropics, cold poles)."""
        ks = run.grid.nz - 1
        th = run.state.to_global("theta")[ks]
        tropics = th[6:10].mean()
        poles = 0.5 * (th[:3].mean() + th[-3:].mean())
        assert tropics > poles + 10.0

    def test_circulation_develops_and_persists(self, run):
        assert diag.total_kinetic_energy(run) > 0
        u = run.state.to_global("u")
        assert np.abs(u).max() > 0.1  # real winds, not numerical dust
