"""Tests of the elliptic operator and the preconditioned CG solver."""

import numpy as np
import pytest

from repro.gcm.cg import preconditioned_cg
from repro.gcm.grid import Grid, GridParams
from repro.gcm.operators import FlopCounter
from repro.gcm.pressure import EllipticOperator
from repro.gcm.topography import double_basin
from repro.parallel.exchange import exchange_halos
from repro.parallel.tiling import Decomposition


def setup(nx=32, ny=16, nz=3, px=2, py=2, olx=1, depth=None):
    p = GridParams(nx=nx, ny=ny, nz=nz, lat0=-60, lat1=60, total_depth=900.0)
    d = Decomposition(nx, ny, px, py, olx=olx)
    g = Grid(p, d, depth=depth)
    return g, EllipticOperator(g)


def manufactured_rhs(grid, ell, seed=0):
    """b = A x_true for a random zero-mean x_true (guaranteed compatible)."""
    rng = np.random.default_rng(seed)
    o = grid.decomp.olx
    x_true = []
    for t in grid.decomp.tiles:
        a = t.alloc2d()
        a[t.interior] = rng.standard_normal((t.ny, t.nx))
        x_true.append(a)
    exchange_halos(grid.decomp, x_true)
    fc = FlopCounter()
    rhs = ell.apply(x_true, fc)
    return x_true, rhs


def remove_mean(grid, tiles, wet):
    o = grid.decomp.olx
    s, n = 0.0, 0
    for r, t in enumerate(grid.decomp.tiles):
        sl = t.interior
        m = wet[r][sl]
        s += float(np.sum(tiles[r][sl] * m))
        n += int(np.sum(m))
    mean = s / max(n, 1)
    return [np.where(wet[r], a - mean, a) for r, a in enumerate(tiles)]


class TestOperator:
    def test_symmetric(self):
        """<x, A y> == <A x, y> over interiors (the matrix is symmetric)."""
        g, ell = setup()
        fc = FlopCounter()
        x, _ = manufactured_rhs(g, ell, seed=1)
        y, _ = manufactured_rhs(g, ell, seed=2)
        ax = ell.apply(x, fc)
        ay = ell.apply(y, fc)
        o = g.decomp.olx

        def dot(a, b):
            return sum(
                float(np.sum(a[r][t.interior] * b[r][t.interior]))
                for r, t in enumerate(g.decomp.tiles)
            )

        assert dot(x, ay) == pytest.approx(dot(ax, y), rel=1e-10)

    def test_negative_semidefinite(self):
        g, ell = setup()
        fc = FlopCounter()
        for seed in range(3):
            x, _ = manufactured_rhs(g, ell, seed=seed)
            ax = ell.apply(x, fc)
            quad = sum(
                float(np.sum(x[r][t.interior] * ax[r][t.interior]))
                for r, t in enumerate(g.decomp.tiles)
            )
            assert quad <= 1e-9

    def test_constant_in_nullspace(self):
        """A(const) = 0 on the wet interior of a connected domain."""
        g, ell = setup()
        fc = FlopCounter()
        ones = [np.ones(t.shape2d) for t in g.decomp.tiles]
        a1 = ell.apply(ones, fc)
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            wet = ell.wet[r][t.interior]
            assert np.abs(a1[r][t.interior][wet]).max() < 1e-9

    def test_land_rows_identity(self):
        depth = double_basin(32, 16, depth=900.0, continent_width=4, polar_caps=1)
        g, ell = setup(depth=depth)
        fc = FlopCounter()
        p = [np.full(t.shape2d, 3.0) for t in g.decomp.tiles]
        ap = ell.apply(p, fc)
        for r, t in enumerate(g.decomp.tiles):
            dry = ~ell.wet[r][t.interior]
            if np.any(dry):
                np.testing.assert_allclose(ap[r][t.interior][dry], -3.0)


class TestCGSolver:
    def test_recovers_manufactured_solution(self):
        g, ell = setup()
        fc = FlopCounter()
        x_true, rhs = manufactured_rhs(g, ell)
        res = preconditioned_cg(ell, rhs, fc, tol=1e-12, maxiter=500)
        assert res.converged
        got = remove_mean(g, res.x, ell.wet)
        want = remove_mean(g, x_true, ell.wet)
        for r, t in enumerate(g.decomp.tiles):
            np.testing.assert_allclose(
                got[r][t.interior], want[r][t.interior], atol=1e-6
            )

    def test_matches_scipy_direct_solve(self):
        """Assemble the dense matrix on a tiny grid; compare solutions."""

        g, ell = setup(nx=8, ny=4, px=1, py=1)
        fc = FlopCounter()
        n = 8 * 4
        # build the matrix column by column through apply()
        cols = []
        o = g.decomp.olx
        t = g.decomp.tile(0)
        for j in range(4):
            for i in range(8):
                e = [t.alloc2d()]
                e[0][o + j, o + i] = 1.0
                exchange_halos(g.decomp, e)
                a = ell.apply(e, fc)[0][t.interior].ravel()
                cols.append(a)
        A = np.array(cols).T
        rng = np.random.default_rng(3)
        x_true = rng.standard_normal(n)
        x_true -= x_true.mean()
        b = A @ x_true
        rhs = [t.alloc2d()]
        rhs[0][t.interior] = b.reshape(4, 8)
        res = preconditioned_cg(ell, rhs, fc, tol=1e-13, maxiter=1000)
        got = res.x[0][t.interior].ravel()
        got -= got.mean()
        np.testing.assert_allclose(got, x_true, atol=1e-6)

    def test_zero_rhs_returns_zero_in_zero_iterations(self):
        g, ell = setup()
        fc = FlopCounter()
        rhs = [t.alloc2d() for t in g.decomp.tiles]
        res = preconditioned_cg(ell, rhs, fc)
        assert res.iterations == 0 and res.converged
        for a in res.x:
            assert np.all(a == 0)

    def test_communication_counts_two_gsums_one_exchange_per_iter(self):
        """The paper's DS accounting: 2 global sums + 1 two-field
        exchange per solver iteration."""
        g, ell = setup()
        fc = FlopCounter()
        _, rhs = manufactured_rhs(g, ell)
        counts = {"gsum": 0, "exch": 0}

        def gsum(parts):
            counts["gsum"] += 1
            return float(np.sum(parts))

        def exch(fields):
            counts["exch"] += len(fields)
            for f in fields:
                exchange_halos(g.decomp, f, width=1)

        res = preconditioned_cg(ell, rhs, fc, tol=1e-12, maxiter=300, global_sum=gsum, exchange=exch)
        ni = res.iterations
        # +1 initial gsum; exchanges: 2 fields per iter + final solution refresh
        assert counts["gsum"] == 2 * ni + 1
        assert counts["exch"] == 2 * ni + 1

    def test_converges_with_island_topography(self):
        depth = double_basin(32, 16, depth=900.0, continent_width=4, polar_caps=1)
        g, ell = setup(depth=depth)
        fc = FlopCounter()
        _, rhs = manufactured_rhs(g, ell, seed=7)
        # zero the rhs on land (physical RHS is wet-only)
        rhs = [np.where(ell.wet[r], a, 0.0) for r, a in enumerate(rhs)]
        res = preconditioned_cg(ell, rhs, fc, tol=1e-10, maxiter=500)
        assert res.converged

    def test_decomposition_invariant_iterates(self):
        """Same problem, different tilings: same iteration count and
        solution to tight tolerance."""
        results = {}
        for px, py in ((1, 1), (2, 2), (4, 2)):
            g, ell = setup(px=px, py=py)
            fc = FlopCounter()
            # same global RHS everywhere
            rng = np.random.default_rng(11)
            rhs_g = rng.standard_normal((16, 32))
            rhs_g -= rhs_g.mean()
            from repro.parallel.exchange import HaloExchanger

            rhs = HaloExchanger(g.decomp).scatter_global(rhs_g)
            res = preconditioned_cg(ell, rhs, fc, tol=1e-11, maxiter=500)
            sol = HaloExchanger(g.decomp).gather_global(res.x)
            sol -= sol.mean()
            results[(px, py)] = (res.iterations, sol)
        base_it, base_sol = results[(1, 1)]
        for key, (it, sol) in results.items():
            assert abs(it - base_it) <= 1
            np.testing.assert_allclose(sol, base_sol, atol=1e-7)

    def test_x0_warm_start(self):
        g, ell = setup()
        fc = FlopCounter()
        x_true, rhs = manufactured_rhs(g, ell, seed=5)
        cold = preconditioned_cg(ell, rhs, fc, tol=1e-10, maxiter=500)
        warm = preconditioned_cg(ell, rhs, fc, tol=1e-10, maxiter=500, x0=cold.x)
        assert warm.iterations <= max(cold.iterations // 4, 1)


class TestCGFailureModes:
    def test_maxiter_exhaustion_reports_unconverged(self):
        g, ell = setup()
        fc = FlopCounter()
        _, rhs = manufactured_rhs(g, ell, seed=21)
        res = preconditioned_cg(ell, rhs, fc, tol=1e-14, maxiter=2)
        assert not res.converged
        assert res.iterations == 2
        assert res.residual > 0

    def test_unconverged_solution_still_usable(self):
        """Early-stopped CG returns the best iterate, not garbage: its
        residual is below the initial residual."""
        g, ell = setup()
        fc = FlopCounter()
        _, rhs = manufactured_rhs(g, ell, seed=22)
        res = preconditioned_cg(ell, rhs, fc, tol=1e-14, maxiter=5)
        assert res.residual < res.initial_residual
