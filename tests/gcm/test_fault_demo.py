"""The headline acceptance demo: a coupled integration over a faulty
fabric finishes bit-identical to the fault-free run, and the same plan
without retransmits yields the watchdog diagnostic instead of a hang."""

import pytest

from repro.faults import FaultPlan, run_coupled_fault_demo


@pytest.fixture(scope="module")
def reliable_result():
    # >= 1% packet loss, as the acceptance criterion demands
    return run_coupled_fault_demo(
        seed=7, drop=0.01, corrupt=0.002, windows=1, reliable=True
    )


class TestReliableRecovery:
    def test_bit_exact_under_faults(self, reliable_result):
        assert reliable_result.bit_exact

    def test_faults_were_actually_injected(self, reliable_result):
        fc = reliable_result.fault_counters
        assert fc["injected_drops"] > 0
        assert fc["injected_corruptions"] > 0
        assert fc["router_crc_drops"] > 0

    def test_recovery_counters_populated(self, reliable_result):
        pr = reliable_result.protocol
        assert pr["retransmissions"] > 0
        assert pr["acks_sent"] > 0
        assert pr["messages_delivered"] > 0

    def test_recovery_costs_simulated_time(self, reliable_result):
        assert reliable_result.wire_time_faulty > reliable_result.wire_time_clean
        assert reliable_result.overhead > 0
        assert reliable_result.overhead_pct > 0

    def test_per_link_counters_name_links(self, reliable_result):
        assert reliable_result.per_link
        for name, dropped, corrupted in reliable_result.per_link:
            assert isinstance(name, str) and (dropped or corrupted)


class TestRawModeDiagnostic:
    def test_same_plan_without_retransmits_deadlocks_with_names(self):
        res = run_coupled_fault_demo(
            plan=FaultPlan(seed=7, drop_prob=0.02), windows=1, reliable=False
        )
        assert not res.bit_exact
        assert res.deadlock is not None
        assert "blocked process(es)" in res.deadlock
        assert "rank" in res.deadlock
