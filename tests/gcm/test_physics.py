"""Tests for the forcing/parametrization packages and the EOS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcm.eos import IdealGasEOS, LinearEOS
from repro.gcm.grid import Grid, GridParams
from repro.gcm.operators import FlopCounter
from repro.gcm.physics import AtmospherePhysics, OceanForcing
from repro.parallel.tiling import Decomposition


def make_grid(nx=16, ny=8, nz=5):
    return Grid(
        GridParams(nx=nx, ny=ny, nz=nz, lat0=-60, lat1=60),
        Decomposition(nx, ny, 1, 1, olx=1),
    )


class TestEOS:
    def test_linear_eos_signs(self):
        eos = LinearEOS()
        warm = eos.buoyancy(np.array([eos.theta0 + 5]), np.array([eos.s0]))
        salty = eos.buoyancy(np.array([eos.theta0]), np.array([eos.s0 + 1]))
        assert warm[0] > 0  # warm water is buoyant
        assert salty[0] < 0  # salty water is dense

    def test_linear_eos_reference_state_neutral(self):
        eos = LinearEOS()
        b = eos.buoyancy(np.array([eos.theta0]), np.array([eos.s0]))
        assert b[0] == 0.0

    def test_ideal_gas_warm_air_rises(self):
        eos = IdealGasEOS()
        b = eos.buoyancy(np.array([eos.theta_ref + 10.0]), np.array([0.0]))
        assert b[0] > 0

    def test_moisture_is_buoyant(self):
        eos = IdealGasEOS()
        dry = eos.buoyancy(np.array([300.0]), np.array([0.0]))
        moist = eos.buoyancy(np.array([300.0]), np.array([0.02]))
        assert moist[0] > dry[0]

    def test_flops_declared(self):
        assert LinearEOS().flops_per_cell > 0
        assert IdealGasEOS().flops_per_cell > 0


class TestAtmospherePhysics:
    def test_theta_eq_warmer_at_equator(self):
        phys = AtmospherePhysics()
        lats = np.array([-60.0, 0.0, 60.0])
        te = phys.theta_eq(lats, k=9, nz=10)  # surface level
        assert te[1] > te[0] and te[1] > te[2]

    def test_theta_eq_increases_with_height(self):
        phys = AtmospherePhysics()
        lat = np.array([0.0])
        assert phys.theta_eq(lat, 0, 10)[0] > phys.theta_eq(lat, 9, 10)[0]

    def test_qsat_increases_with_theta(self):
        phys = AtmospherePhysics()
        assert phys.q_sat(np.array([310.0]))[0] > phys.q_sat(np.array([290.0]))[0]
        assert phys.q_sat(np.array([100.0]))[0] > 0  # floored

    def test_relaxation_tendency_toward_equilibrium(self):
        phys = AtmospherePhysics()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        theta = np.full(shape, 400.0)  # way above equilibrium
        u = np.zeros(shape)
        q = np.zeros(shape)
        gu, gv, gth, gq = (np.zeros(shape) for _ in range(4))
        phys.apply_tendencies(0, g, u, u, theta, q, gu, gv, gth, gq, FlopCounter())
        o = g.decomp.olx
        assert np.all(gth[:, o:-o, o:-o] < 0)  # cooling toward equilibrium

    def test_rayleigh_drag_opposes_surface_wind(self):
        phys = AtmospherePhysics()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        u = np.full(shape, 10.0)
        theta = np.full(shape, 300.0)
        gu = np.zeros(shape)
        gv, gth, gq = (np.zeros(shape) for _ in range(3))
        phys.apply_tendencies(0, g, u, np.zeros(shape), theta, np.zeros(shape), gu, gv, gth, gq, FlopCounter())
        assert np.all(gu[-1] < 0)  # surface level decelerates
        assert np.all(gu[0] == 0)  # top level untouched by drag

    def test_condensation_removes_supersaturation_and_heats(self):
        phys = AtmospherePhysics()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        theta = np.full(shape, 300.0)
        q = np.full(shape, 0.05)  # supersaturated
        gq = np.zeros(shape)
        gth = np.zeros(shape)
        gu = np.zeros(shape)
        phys.apply_tendencies(0, g, gu, gu, theta, q, gu.copy(), gu.copy(), gth, gq, FlopCounter())
        assert np.all(gq < 0)
        assert np.all(gth > 0)  # latent heating (dominates weak radiation)

    def test_sst_flux_heats_cold_surface_air(self):
        phys = AtmospherePhysics()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        theta = np.full(shape, 280.0)
        sst = np.full(g.decomp.tile(0).shape2d, 300.0)
        gth = np.zeros(shape)
        z = np.zeros(shape)
        gq = np.zeros(shape)
        phys.apply_tendencies(0, g, z, z, theta, z.copy(), z.copy(), z.copy(), gth, gq, FlopCounter(), sst=sst)
        assert np.all(gth[-1] > 0)
        assert np.all(gq[-1] > 0)  # evaporation


class TestConvectiveAdjustment:
    def test_removes_instability(self):
        phys = AtmospherePhysics()
        g = make_grid(nz=5)
        shape = g.decomp.tile(0).shape3d(5)
        theta = np.zeros(shape)
        for k in range(5):
            theta[k] = 300.0 + k  # warmer below top?? k=0 top: 300, k=4: 304 -> unstable
        mixed = phys.convective_adjustment(theta, g, 0, FlopCounter())
        assert mixed > 0
        # stable afterwards: theta non-increasing with k
        assert np.all(np.diff(theta, axis=0) <= 1e-9)

    def test_preserves_column_heat(self):
        phys = AtmospherePhysics()
        g = make_grid(nz=5)
        shape = g.decomp.tile(0).shape3d(5)
        rng = np.random.default_rng(0)
        theta = 300.0 + rng.standard_normal(shape)
        drf = g.drf[:, None, None]
        heat0 = np.sum(theta * drf, axis=0).copy()
        phys.convective_adjustment(theta, g, 0, FlopCounter())
        np.testing.assert_allclose(np.sum(theta * drf, axis=0), heat0, rtol=1e-12)

    def test_stable_profile_untouched(self):
        phys = AtmospherePhysics()
        g = make_grid(nz=5)
        shape = g.decomp.tile(0).shape3d(5)
        theta = np.zeros(shape)
        for k in range(5):
            theta[k] = 310.0 - 2 * k  # decreasing with k: stable
        snapshot = theta.copy()
        mixed = phys.convective_adjustment(theta, g, 0, FlopCounter())
        assert mixed == 0
        np.testing.assert_array_equal(theta, snapshot)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_property_always_stabilizes_and_conserves(self, seed):
        phys = OceanForcing()
        g = make_grid(nz=4)
        shape = g.decomp.tile(0).shape3d(4)
        rng = np.random.default_rng(seed)
        theta = 10.0 + 3.0 * rng.standard_normal(shape)
        drf = g.drf[:, None, None]
        heat0 = np.sum(theta * drf, axis=0).copy()
        # iterate adjustment to fixed point (single sweeps may cascade)
        for _ in range(4):
            phys.convective_adjustment(theta, g, 0, FlopCounter())
        np.testing.assert_allclose(np.sum(theta * drf, axis=0), heat0, rtol=1e-10)
        assert np.all(np.diff(theta, axis=0) <= 1e-9)


class TestOceanForcing:
    def test_wind_stress_profile_shape(self):
        phys = OceanForcing()
        # easterlies in the tropics (negative), westerlies mid-latitude
        assert phys.wind_stress(np.array([0.0]))[0] < 0
        assert phys.wind_stress(np.array([45.0]))[0] > 0

    def test_theta_star_warm_equator(self):
        phys = OceanForcing()
        ts = phys.theta_star(np.array([-60.0, 0.0, 60.0]))
        assert ts[1] == max(ts)

    def test_wind_stress_enters_top_level_only(self):
        phys = OceanForcing()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        z = np.zeros(shape)
        gu = np.zeros(shape)
        theta = np.full(shape, 10.0)
        salt = np.full(shape, 35.0)
        phys.apply_tendencies(0, g, z, z, theta, salt, gu, z.copy(), z.copy(), z.copy(), FlopCounter())
        assert np.any(gu[0] != 0)
        assert np.all(gu[1:] == 0)

    def test_coupled_stress_overrides_climatology(self):
        phys = OceanForcing()
        g = make_grid()
        shape = g.decomp.tile(0).shape3d(g.nz)
        z = np.zeros(shape)
        gu = np.zeros(shape)
        taux = np.full(g.decomp.tile(0).shape2d, 0.2)
        theta = np.full(shape, 10.0)
        phys.apply_tendencies(
            0, g, z, z, theta, theta.copy(), gu, z.copy(), z.copy(), z.copy(),
            FlopCounter(), taux=taux,
        )
        o = g.decomp.olx
        assert np.all(gu[0, o:-o, o:-o] > 0)


class TestSeasonalCycle:
    def test_default_is_perpetual_equinox(self):
        phys = AtmospherePhysics()
        phys.set_time(1e7)
        assert phys.heating_center() == 0.0
        lats = np.array([-45.0, 45.0])
        te = phys.theta_eq(lats, 9, 10)
        assert te[0] == pytest.approx(te[1])  # hemispherically symmetric

    def test_solstices_swap_hemispheres(self):
        phys = AtmospherePhysics(seasonal_shift=0.4, year_length=360 * 86400.0)
        lats = np.array([-45.0, 45.0])
        phys.set_time(90 * 86400.0)  # northern solstice (quarter year)
        north_summer = phys.theta_eq(lats, 9, 10)
        assert north_summer[1] > north_summer[0]
        phys.set_time(270 * 86400.0)  # southern solstice
        south_summer = phys.theta_eq(lats, 9, 10)
        assert south_summer[0] > south_summer[1]
        # the two solstices mirror each other
        assert north_summer[1] == pytest.approx(south_summer[0])

    def test_annual_mean_is_symmetric(self):
        phys = AtmospherePhysics(seasonal_shift=0.4)
        lats = np.array([-30.0, 30.0])
        days = np.linspace(0, 360, 73) * 86400.0
        acc = np.zeros(2)
        for t in days:
            phys.set_time(float(t))
            acc += phys.theta_eq(lats, 9, 10)
        assert acc[0] == pytest.approx(acc[1], rel=1e-12)

    def test_model_integrates_with_seasons(self):
        from repro.gcm import diagnostics as diag
        from repro.gcm.atmosphere import atmosphere_model

        phys = AtmospherePhysics(seasonal_shift=0.3, year_length=30 * 86400.0)
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=450.0, physics=phys)
        m.run(8)
        assert diag.is_finite(m)
        assert phys.current_time == pytest.approx(m.state.time - m.config.dt)
