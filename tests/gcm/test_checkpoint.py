"""Tests for bit-exact checkpoint/restart."""

import numpy as np
import pytest

from repro.gcm.checkpoint import load_checkpoint, save_checkpoint
from repro.gcm.ocean import ocean_model

FIELDS = ("u", "v", "theta", "tracer", "ps")


def fresh(px=2, py=2):
    return ocean_model(nx=32, ny=16, nz=4, px=px, py=py, dt=600.0, cg_tol=1e-11)


def globals_of(m):
    return {n: m.state.to_global(n) for n in FIELDS}


class TestRoundTrip:
    def test_restart_is_bit_exact(self, tmp_path):
        a = fresh()
        a.run(6)
        reference = globals_of(a)

        b = fresh()
        b.run(3)
        ckpt = save_checkpoint(b, tmp_path / "mid")
        c = fresh()
        load_checkpoint(c, ckpt)
        c.run(3)
        restarted = globals_of(c)

        for n in FIELDS:
            np.testing.assert_array_equal(restarted[n], reference[n], err_msg=n)

    def test_restart_across_decompositions(self, tmp_path):
        """Save on 2x2, restart on 4x1: physics identical to fp noise."""
        a = fresh(2, 2)
        a.run(3)
        ckpt = save_checkpoint(a, tmp_path / "x")
        b = fresh(4, 1)
        load_checkpoint(b, ckpt)
        b.run(3)
        a.run(3)
        for n in FIELDS:
            ga, gb = a.state.to_global(n), b.state.to_global(n)
            scale = np.abs(ga).max() + 1e-30
            assert np.abs(ga - gb).max() < 1e-11 * scale, n

    def test_time_and_step_count_restored(self, tmp_path):
        a = fresh()
        a.run(4)
        p = save_checkpoint(a, tmp_path / "t")
        b = fresh()
        load_checkpoint(b, p)
        assert b.state.time == a.state.time
        assert b.state.step_count == 4
        assert b._first_step == a._first_step

    def test_suffix_added(self, tmp_path):
        a = fresh()
        p = save_checkpoint(a, tmp_path / "noext")
        assert p.suffix == ".npz"
        load_checkpoint(fresh(), tmp_path / "noext")  # suffix inferred


class TestValidationErrors:
    def test_grid_mismatch_rejected(self, tmp_path):
        a = fresh()
        p = save_checkpoint(a, tmp_path / "g")
        other = ocean_model(nx=16, ny=8, nz=4, px=2, py=2, dt=600.0)
        with pytest.raises(ValueError, match="grid"):
            load_checkpoint(other, p)

    def test_version_checked(self, tmp_path):
        a = fresh()
        p = save_checkpoint(a, tmp_path / "v")
        data = dict(np.load(p))
        data["version"] = np.array(99)
        np.savez(p, **data)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(fresh(), p)
