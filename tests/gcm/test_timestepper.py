"""Integration tests of the full model step (the Fig. 6 loop)."""

import numpy as np
import pytest

from repro.gcm import diagnostics as diag
from repro.gcm.atmosphere import atmosphere_model
from repro.gcm.ocean import ocean_model
from repro.gcm.topography import double_basin


def small_ocean(px=2, py=2, steps=0, **kw):
    m = ocean_model(nx=32, ny=16, nz=4, px=px, py=py, dt=600.0, **kw)
    if steps:
        m.run(steps)
    return m


class TestStepMechanics:
    def test_step_advances_time(self):
        m = small_ocean()
        m.step()
        assert m.state.time == 600.0
        assert m.state.step_count == 1

    def test_state_stays_finite(self):
        m = small_ocean(steps=10)
        assert diag.is_finite(m)

    def test_cg_converges_every_step(self):
        m = small_ocean(steps=8)
        assert all(h.cg_converged for h in m.history)

    def test_solver_iteration_history(self):
        m = small_ocean(steps=5)
        assert m.mean_ni() > 0
        assert all(h.ni <= m.config.cg_maxiter for h in m.history)

    def test_flops_counted(self):
        m = small_ocean(steps=2)
        assert all(h.flops_ps > 0 and h.flops_ds > 0 for h in m.history)
        assert m.runtime.total_flops() > 0

    def test_virtual_clock_advances(self):
        m = small_ocean(steps=3)
        assert m.runtime.elapsed > 0
        st = m.runtime.stats[0]
        assert st.compute_time > 0
        assert st.exchange_time > 0
        assert st.gsum_time > 0

    def test_ps_exchange_is_five_fields(self):
        m = small_ocean()
        before = m.runtime.stats[0].n_exchanges
        m.step()
        # 5 PS fields + 2 per CG iteration (charged via charge_phase)
        ni = m.history[0].ni
        assert m.runtime.stats[0].n_exchanges == before + 5 + 2 * ni

    def test_two_gsums_per_solver_iteration(self):
        m = small_ocean()
        m.step()
        ni = m.history[0].ni
        assert m.runtime.stats[0].n_gsums == 2 * ni


class TestPhysicsConsistency:
    def test_depth_integrated_flow_nondivergent_after_correction(self):
        m = small_ocean(steps=5)
        div = diag.depth_integrated_divergence(m)
        # compare against a typical transport magnitude
        u = m.state.to_global("u")
        h = m.config.grid.total_depth
        dy = m.grid.dyc[0].flat[0]
        typical = max(np.abs(u).max() * h * dy, 1e-12)
        assert div < 1e-5 * typical

    def test_wind_stress_spins_up_kinetic_energy(self):
        m = small_ocean()
        ke0 = diag.total_kinetic_energy(m)
        m.run(5)
        assert diag.total_kinetic_energy(m) > ke0

    def test_tracer_inventory_conserved_without_forcing(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, physics=None)
        inv0 = diag.tracer_inventory(m, "theta")
        m.run(8)
        inv1 = diag.tracer_inventory(m, "theta")
        assert inv1 == pytest.approx(inv0, rel=1e-9)

    def test_salt_conserved_without_forcing(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, physics=None)
        inv0 = diag.tracer_inventory(m, "tracer")
        m.run(8)
        assert diag.tracer_inventory(m, "tracer") == pytest.approx(inv0, rel=1e-9)

    def test_restoring_pulls_sst_toward_target(self):
        m = small_ocean()
        phys = m.config.physics
        lats = m.config.grid.lat0 + (np.arange(16) + 0.5) * m.config.grid.dlat
        target = phys.theta_star(lats)
        sst0 = m.surface_temperature()
        err0 = np.abs(sst0 - target[:, None]).mean()
        # cool the surface artificially, then integrate
        th = m.state.to_global("theta")
        th[0] -= 3.0
        m.state.set_from_global("theta", th)
        errs = []
        for _ in range(10):
            m.step()
            errs.append(np.abs(m.surface_temperature() - target[:, None]).mean())
        assert errs[-1] < errs[0]

    def test_runs_with_topography(self):
        depth = double_basin(32, 16, depth=4000.0, continent_width=4, polar_caps=1)
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, depth=depth)
        m.run(5)
        assert diag.is_finite(m)
        # land stays at rest
        u = m.state.to_global("u")
        assert np.all(u[:, :, :2] == 0.0)  # continent at x=0..3


class TestAtmosphere:
    def test_atmosphere_steps_stably(self):
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=300.0)
        m.run(10)
        assert diag.is_finite(m)
        assert diag.max_cfl(m) < 0.5

    def test_radiative_relaxation_bounds_theta(self):
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=300.0)
        m.run(10)
        th = m.state.to_global("theta")
        phys = m.config.physics
        wet = m.state.to_global("tracer") >= 0  # everywhere
        assert th.max() < phys.theta_ref + phys.dtheta_z + 30
        assert th.min() > phys.theta_ref - phys.dtheta_y - 30

    def test_moisture_nonnegative_ish(self):
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=300.0)
        m.run(10)
        q = m.state.to_global("tracer")
        assert q.min() > -1e-4  # condensation sink cannot drive q far negative

    def test_surface_level_is_bottom_of_arrays(self):
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2)
        assert m.config.physics.surface_level(5) == 4
        assert m.is_atmosphere


class TestDecompositionInvariance:
    """The overcomputation guarantee, end to end: identical physics for
    any tiling (Section 4)."""

    @pytest.mark.parametrize("px,py", [(2, 2), (4, 2), (2, 4)])
    def test_matches_serial_run(self, px, py):
        def run(px_, py_):
            m = ocean_model(nx=32, ny=16, nz=4, px=px_, py=py_, dt=600.0, cg_tol=1e-12)
            m.run(4)
            return {n: m.state.to_global(n) for n in ("u", "v", "theta", "tracer")}

        serial = run(1, 1)
        tiled = run(px, py)
        for n, ref in serial.items():
            scale = np.abs(ref).max() + 1e-30
            assert np.abs(tiled[n] - ref).max() < 1e-12 * scale

    def test_strip_decomposition(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=4, py=1, dt=600.0)
        m.run(3)
        assert diag.is_finite(m)


class TestDSDecomposition:
    def test_default_ds_tiles_pair_smp_masters(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, cpus_per_node=2)
        assert m.ds_decomp.n_ranks == 2  # 4 ranks / 2 cpus per node
        assert m.ds_decomp.px == 1 and m.ds_decomp.py == 2

    def test_ds_on_all_ranks_option(self):
        m = ocean_model(
            nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, ds_px=2, ds_py=2
        )
        assert m.ds_decomp is m.decomp
        m.run(2)
        assert diag.is_finite(m)

    def test_ds_choice_does_not_change_physics(self):
        def run(**kw):
            m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, cg_tol=1e-12, **kw)
            m.run(3)
            return m.state.to_global("u")

        u_masters = run()
        u_all = run(ds_px=2, ds_py=2)
        scale = np.abs(u_masters).max() + 1e-30
        assert np.abs(u_all - u_masters).max() < 1e-10 * scale
