"""Tests for configuration validation and runtime traffic accounting."""

import pytest

from repro.gcm.ocean import ocean_model
from repro.gcm.timestepper import Model, ModelConfig
from repro.gcm.grid import GridParams


class TestConfigValidation:
    def base(self, **kw):
        cfg = ModelConfig(grid=GridParams(nx=32, ny=16, nz=4), px=2, py=2)
        for k, v in kw.items():
            setattr(cfg, k, v)
        return cfg

    def test_valid_config_builds(self):
        Model(self.base())

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("dt", 0.0, "dt"),
            ("dt", -10.0, "dt"),
            ("cg_tol", 0.0, "cg_tol"),
            ("cg_maxiter", 0, "cg"),
            ("olx", 0, "halo"),
            ("px", 0, "process grid"),
            ("cpus_per_node", 0, "cpus_per_node"),
        ],
    )
    def test_bad_values_rejected(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            Model(self.base(**{field: value}))


class TestTrafficAccounting:
    def test_bytes_exchanged_match_edge_arithmetic(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        m.step()
        # 5 PS fields of halo-3 exchange per step
        expected = 5 * sum(
            sum(m.decomp.edge_bytes(nz=4, rank=r)) for r in range(4)
        )
        total = sum(st.bytes_exchanged for st in m.runtime.stats)
        assert total == expected

    def test_summary_exposes_traffic(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        m.run(2)
        s = m.runtime.summary()
        assert s["total_bytes_exchanged"] > 0

    def test_traffic_scales_with_steps(self):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0)
        m.step()
        one = sum(st.bytes_exchanged for st in m.runtime.stats)
        m.step()
        two = sum(st.bytes_exchanged for st in m.runtime.stats)
        assert two == 2 * one
