"""Tests for the selectable tracer advection schemes."""

import numpy as np
import pytest

from repro.gcm import operators as op
from repro.gcm.grid import Grid, GridParams
from repro.gcm.ocean import ocean_model
from repro.gcm.operators import FlopCounter
from repro.gcm.prognostic import DynamicsParams
from repro.parallel.exchange import exchange_halos
from repro.parallel.tiling import Decomposition


def make_grid(nx=32, ny=8, nz=1):
    return Grid(
        GridParams(nx=nx, ny=ny, nz=nz, lat0=-20, lat1=20, total_depth=100.0),
        Decomposition(nx, ny, 1, 1, olx=3),
    )


def advect_1d(scheme, steps=60, dt=600.0):
    """Pure zonal advection of a square pulse around the periodic ring."""
    g = make_grid()
    t = g.decomp.tile(0)
    fc = FlopCounter()
    o = g.decomp.olx
    u = np.full(t.shape3d(1), 1.0)
    v = np.zeros_like(u)
    c = np.zeros_like(u)
    c[0, :, o + 4 : o + 10] = 1.0  # square pulse
    exchange_halos(g.decomp, [c])
    ut, vt = op.transports(u, v, g, 0, fc)
    wflux = op.vertical_transport(ut, vt, fc)
    for _ in range(steps):
        gc = op.advect_tracer(c, ut, vt, wflux, g, 0, fc, scheme=scheme)
        c = c + dt * gc
        exchange_halos(g.decomp, [c])
    return c[0, o : o + t.ny, o : o + t.nx]


class TestSchemes:
    def test_unknown_scheme_rejected(self):
        g = make_grid()
        fc = FlopCounter()
        z = np.zeros(g.decomp.tile(0).shape3d(1))
        with pytest.raises(ValueError, match="scheme"):
            op.advect_tracer(z, z, z, z, g, 0, fc, scheme="bogus")

    def test_both_schemes_conserve_total(self):
        for scheme in ("centered", "upwind"):
            final = advect_1d(scheme)
            assert final.sum() == pytest.approx(8 * 6, rel=1e-10), scheme

    def test_upwind_is_monotone(self):
        """Donor-cell advection creates no new extrema."""
        final = advect_1d("upwind")
        assert final.min() >= -1e-12
        assert final.max() <= 1.0 + 1e-12

    def test_centered_disperses(self):
        """The 2nd-order scheme produces over/undershoots on a square
        pulse (the classic dispersive ringing)."""
        final = advect_1d("centered")
        assert final.min() < -1e-3 or final.max() > 1.0 + 1e-3

    def test_upwind_diffuses_more(self):
        """Upwind's price: the pulse's variance decays faster."""
        var_up = np.var(advect_1d("upwind"))
        var_ce = np.var(advect_1d("centered"))
        assert var_up < var_ce

    def test_upwind_downwind_symmetry(self):
        """Reversing the flow mirrors the upwind solution."""
        g = make_grid()
        t = g.decomp.tile(0)
        fc = FlopCounter()
        o = g.decomp.olx

        def run(sign):
            u = np.full(t.shape3d(1), sign * 1.0)
            v = np.zeros_like(u)
            c = np.zeros_like(u)
            c[0, :, o + 12 : o + 16] = 1.0
            exchange_halos(g.decomp, [c])
            ut, vt = op.transports(u, v, g, 0, fc)
            wflux = op.vertical_transport(ut, vt, fc)
            for _ in range(600):  # ~1.5 cell widths of drift at 1 m/s
                gc = op.advect_tracer(c, ut, vt, wflux, g, 0, fc, scheme="upwind")
                c = c + 600.0 * gc
                exchange_halos(g.decomp, [c])
            return c[0, o + 2, o : o + t.nx]

        east = run(+1.0)
        west = run(-1.0)
        x = np.arange(east.size)

        def center(c):
            return float(np.sum(x * c) / np.sum(c))

        start = 0.5 * (12 + 15)
        # expected drift: u T / dx = 3.6e5 m / 1.24e6 m ~ 0.29 cells
        assert center(east) > start + 0.2  # drifted east
        assert center(west) < start - 0.2  # drifted west
        # and the two drifts mirror about the pulse center
        assert center(east) - start == pytest.approx(start - center(west), abs=0.02)


class TestModelIntegrationWithUpwind:
    def test_model_runs_with_upwind(self):
        m = ocean_model(
            nx=32, ny=16, nz=4, px=2, py=2, dt=600.0,
            dynamics=DynamicsParams(advection_scheme="upwind"),
        )
        m.run(4)
        from repro.gcm import diagnostics as diag

        assert diag.is_finite(m)

    def test_scheme_changes_solution(self):
        def run(scheme):
            m = ocean_model(
                nx=32, ny=16, nz=4, px=2, py=2, dt=600.0,
                dynamics=DynamicsParams(advection_scheme=scheme),
            )
            m.run(20)  # let the wind-driven flow advect something
            return m.state.to_global("theta")

        diff = np.abs(run("centered") - run("upwind")).max()
        assert diff > 0.0
