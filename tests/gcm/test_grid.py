"""Tests for the spherical C-grid metrics and shaved cells."""

import numpy as np
import pytest

from repro.gcm.grid import Grid, GridParams
from repro.gcm.topography import double_basin, flat_bottom, midlatitude_ridge
from repro.parallel.tiling import Decomposition


def make_grid(nx=32, ny=16, nz=4, px=2, py=2, olx=2, depth=None, **kw):
    p = GridParams(nx=nx, ny=ny, nz=nz, **kw)
    d = Decomposition(nx, ny, px, py, olx=olx)
    return Grid(p, d, depth=depth)


class TestMetrics:
    def test_total_area_matches_spherical_band(self):
        g = make_grid(lat0=-60.0, lat1=60.0)
        a = g.c.radius
        want = 2 * np.pi * a**2 * (np.sin(np.deg2rad(60)) - np.sin(np.deg2rad(-60)))
        total = 0.0
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            total += float(np.sum(g.ra[r][o : o + t.ny, o : o + t.nx]))
        assert total == pytest.approx(want, rel=1e-12)

    def test_dx_shrinks_toward_poles(self):
        g = make_grid(lat0=-80, lat1=80)
        o = g.decomp.olx
        # tile 0 is south, tile 2 is north of it (2x2 grid)
        dx_south_edge = g.dxc[0][o, o]
        dx_equator = g.dxc[2][o, o]
        assert dx_south_edge < dx_equator

    def test_dy_uniform(self):
        g = make_grid()
        for r in range(g.n_ranks):
            assert np.allclose(g.dyc[r], g.dyc[r].flat[0])

    def test_coriolis_sign_by_hemisphere(self):
        g = make_grid(lat0=-60, lat1=60)
        o = g.decomp.olx
        assert g.fc[0][o, o] < 0  # southern hemisphere
        assert g.fc[2][-o - 1, o] > 0  # northern

    def test_layer_thicknesses_uniform_default(self):
        g = make_grid(nz=5, total_depth=1000.0)
        assert np.allclose(g.drf, 200.0)
        assert g.z_center[0] == pytest.approx(-100.0)

    def test_custom_drf(self):
        g = make_grid(nz=3, drf=(50.0, 150.0, 800.0))
        assert g.z_center[2] == pytest.approx(-(50 + 150 + 400))

    def test_bad_drf_rejected(self):
        with pytest.raises(ValueError):
            make_grid(nz=3, drf=(50.0, 150.0))
        with pytest.raises(ValueError):
            make_grid(nz=2, drf=(50.0, -1.0))

    def test_grid_decomp_mismatch_rejected(self):
        p = GridParams(nx=32, ny=16)
        d = Decomposition(16, 16, 2, 2)
        with pytest.raises(ValueError):
            Grid(p, d)

    def test_min_dx_positive(self):
        assert make_grid().min_dx() > 0


class TestHFacs:
    def test_flat_bottom_fully_open(self):
        g = make_grid(depth=flat_bottom(32, 16, GridParams().total_depth * 0 + 800.0), total_depth=800.0, nz=4)
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            assert np.all(g.hfac_c[r][:, o : o + t.ny, o : o + t.nx] == 1.0)

    def test_land_closes_cells(self):
        depth = double_basin(32, 16, depth=800.0, continent_width=4, polar_caps=1)
        g = make_grid(depth=depth, total_depth=800.0, nz=4)
        land = depth == 0
        hf = np.zeros((16, 32))
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            hf[t.y0 : t.y0 + t.ny, t.x0 : t.x0 + t.nx] = g.hfac_c[r][
                0, o : o + t.ny, o : o + t.nx
            ]
        assert np.all(hf[land] == 0.0)
        assert np.all(hf[~land] > 0.0)

    def test_partial_cells_on_ridge(self):
        depth = midlatitude_ridge(32, 16, depth=800.0, ridge_height=500.0)
        g = make_grid(depth=depth, total_depth=800.0, nz=4)
        fracs = set()
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            vals = g.hfac_c[r][:, o : o + t.ny, o : o + t.nx]
            fracs.update(np.unique(np.round(vals, 6)).tolist())
        partial = [f for f in fracs if 0.0 < f < 1.0]
        assert partial, "ridge should produce shaved (partial) cells"
        # partial cells respect the minimum fraction
        assert min(partial) >= GridParams().hfac_min

    def test_face_factors_are_min_of_neighbors(self):
        depth = double_basin(32, 16, depth=800.0, continent_width=4, polar_caps=1)
        g = make_grid(depth=depth, total_depth=800.0, nz=4)
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            c = g.hfac_c[r]
            w = g.hfac_w[r]
            # interior faces only
            sl = (slice(None), slice(o, o + t.ny), slice(o + 1, o + t.nx))
            expected = np.minimum(c[..., o : o + t.ny, o : o + t.nx - 1], c[sl])
            np.testing.assert_allclose(w[sl], expected)

    def test_walls_close_meridional_faces(self):
        g = make_grid()
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            if g.decomp.neighbor(r, "south") is None:
                assert np.all(g.hfac_s[r][:, o, :] == 0.0)
            if g.decomp.neighbor(r, "north") is None:
                assert np.all(g.hfac_s[r][:, o + t.ny, :] == 0.0)

    def test_depth_c_integrates_hfac(self):
        g = make_grid(total_depth=800.0, nz=4)
        o = g.decomp.olx
        for r, t in enumerate(g.decomp.tiles):
            np.testing.assert_allclose(
                g.depth_c[r][o : o + t.ny, o : o + t.nx], 800.0
            )

    def test_wet_cell_count(self):
        g = make_grid(total_depth=800.0, nz=4)
        assert g.total_wet_cells() == 32 * 16 * 4

    def test_bad_depth_shape_rejected(self):
        with pytest.raises(ValueError):
            make_grid(depth=np.zeros((4, 4)))

    def test_cell_volumes_positive_where_wet(self):
        g = make_grid()
        v = g.cell_volumes(0)
        assert np.all(v >= 0)
        o = g.decomp.olx
        t = g.decomp.tile(0)
        assert np.all(v[:, o : o + t.ny, o : o + t.nx] > 0)


class TestTopographyGenerators:
    def test_flat_bottom(self):
        from repro.gcm.topography import flat_bottom

        d = flat_bottom(8, 4, 1000.0)
        assert d.shape == (4, 8)
        assert np.all(d == 1000.0)

    def test_double_basin_structure(self):
        from repro.gcm.topography import double_basin

        d = double_basin(32, 16, depth=1000.0, continent_width=4, polar_caps=2)
        assert np.all(d[:, :4] == 0.0)  # western continent
        assert np.all(d[:, 16:20] == 0.0)  # mid continent
        assert np.all(d[:2] == 0.0) and np.all(d[-2:] == 0.0)  # caps
        assert np.all(d[4, 6:14] == 1000.0)  # open basin

    def test_ridge_profile(self):
        from repro.gcm.topography import midlatitude_ridge

        d = midlatitude_ridge(32, 8, depth=1000.0, ridge_height=600.0)
        assert d[:, 16].min() == pytest.approx(400.0, rel=0.01)  # ridge crest
        assert d[:, 0].max() == pytest.approx(1000.0, rel=0.05)  # far field

    def test_bowl_land_rim(self):
        from repro.gcm.topography import bowl

        d = bowl(16, 16, depth=1000.0)
        assert d[0, 0] == 0.0  # corners are land
        assert d[8, 8] > 900.0  # deep center
