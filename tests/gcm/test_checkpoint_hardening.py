"""Durability of the checkpoint layer: atomic writes, self-verifying
archives, and resume-from-latest-good after corruption."""

import os

import numpy as np
import pytest

from repro.gcm.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    find_latest_good,
    load_checkpoint,
    resume_latest,
    save_checkpoint,
    verify_checkpoint,
)
from repro.gcm.ocean import ocean_model


@pytest.fixture
def model():
    m = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    m.run(2)
    return m


class TestAtomicity:
    def test_no_tmp_file_left_behind(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ck.npz")
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_overwrite_is_atomic(self, model, tmp_path):
        """Re-saving over an existing checkpoint replaces it whole; the
        archive at that name verifies at every point in time."""
        path = save_checkpoint(model, tmp_path / "ck.npz")
        model.run(1)
        save_checkpoint(model, path)
        meta = verify_checkpoint(path)
        assert meta["step_count"] == model.state.step_count


class TestVerification:
    def test_verify_returns_metadata(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ck.npz")
        meta = verify_checkpoint(path)
        assert meta["version"] == CHECKPOINT_VERSION
        assert meta["grid"] == (16, 8, 3)
        assert meta["step_count"] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            verify_checkpoint(tmp_path / "nope.npz")

    def test_truncation_detected(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ck.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            verify_checkpoint(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError):
            verify_checkpoint(path)

    def test_payload_corruption_fails_checksum(self, model, tmp_path):
        """Rewrite one field with altered data but keep the stored
        checksum: the mismatch must be caught."""
        path = save_checkpoint(model, tmp_path / "ck.npz")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["f3_theta"] = payload["f3_theta"] + 1e-9
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        with pytest.raises(CheckpointError, match="checksum"):
            verify_checkpoint(path)

    def test_wrong_version_rejected(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ck.npz")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.array(CHECKPOINT_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        with pytest.raises(CheckpointError, match="version"):
            verify_checkpoint(path)

    def test_load_checks_grid_match(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ck.npz")
        other = ocean_model(nx=32, ny=8, nz=3, px=2, py=2, dt=600.0)
        with pytest.raises(CheckpointError, match="grid"):
            load_checkpoint(other, path)


class TestAutoResume:
    def test_latest_good_skips_corrupt(self, model, tmp_path):
        good = save_checkpoint(model, tmp_path / "a.npz")
        os.utime(good, (1_000_000, 1_000_000))
        model.run(1)
        newer = save_checkpoint(model, tmp_path / "b.npz")
        os.utime(newer, (2_000_000, 2_000_000))
        raw = newer.read_bytes()
        newer.write_bytes(raw[:100])  # newest is torn (killed mid-write)
        assert find_latest_good(tmp_path) == good

    def test_resume_latest_restores_state(self, model, tmp_path):
        save_checkpoint(model, tmp_path / "ck.npz")
        theta_then = model.state.to_global("theta").copy()
        model.run(3)
        fresh = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
        path = resume_latest(fresh, tmp_path)
        assert path is not None
        np.testing.assert_array_equal(fresh.state.to_global("theta"), theta_then)
        assert fresh.state.step_count == 2

    def test_resume_empty_directory_returns_none(self, model, tmp_path):
        assert resume_latest(model, tmp_path) is None

    def test_resume_bit_exact_continuation(self, model, tmp_path):
        """A run split by save/restore matches an unbroken one exactly
        even when the archive took a round trip through verification."""
        save_checkpoint(model, tmp_path / "ck.npz")
        model.run(4)
        unbroken = model.state.to_global("theta")
        fresh = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
        resume_latest(fresh, tmp_path)
        fresh.run(4)
        np.testing.assert_array_equal(fresh.state.to_global("theta"), unbroken)
