"""FaultPlan as pure data: validation, determinism, exact round-trips."""

import json
import random

import pytest

from repro.faults import (
    BandwidthEvent,
    CrashEvent,
    FaultPlan,
    JitterEvent,
    LinkFaultModel,
    SlowdownEvent,
    StallEvent,
)


def random_plan(rng):
    """A plan exercising every field, sized/valued at random."""
    return FaultPlan(
        seed=rng.getrandbits(16),
        drop_prob=rng.uniform(0.0, 0.4),
        corrupt_prob=rng.uniform(0.0, 0.4),
        link_overrides={
            f"niu{rng.randrange(16)}^": LinkFaultModel(
                drop_prob=rng.uniform(0.0, 0.5)
            )
            for _ in range(rng.randrange(3))
        },
        degradations=tuple(
            BandwidthEvent(
                link=f"R1.0.{rng.randrange(4)}",
                start=rng.uniform(0.0, 1.0),
                duration=rng.uniform(1e-3, 1.0),
                factor=rng.uniform(0.05, 1.0),
                extra_latency=rng.uniform(0.0, 1e-4),
            )
            for _ in range(rng.randrange(3))
        ),
        stalls=tuple(
            StallEvent(
                node=rng.randrange(16),
                start=rng.uniform(0.0, 1.0),
                duration=rng.uniform(1e-3, 1.0),
            )
            for _ in range(rng.randrange(2))
        ),
        crashes=tuple(
            CrashEvent(node=rng.randrange(16), start=rng.uniform(0.0, 1.0))
            for _ in range(rng.randrange(2))
        ),
        slowdowns=tuple(
            SlowdownEvent(
                node=rng.randrange(16),
                start=rng.uniform(0.0, 1.0),
                duration=rng.uniform(1e-3, 1.0),
                factor=rng.uniform(1.0, 16.0),
            )
            for _ in range(rng.randrange(3))
        ),
        jitters=tuple(
            JitterEvent(
                node=rng.randrange(16),
                start=rng.uniform(0.0, 1.0),
                duration=rng.uniform(1e-3, 1.0),
                amp=rng.uniform(1e-7, 1e-4),
            )
            for _ in range(rng.randrange(2))
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_plans_round_trip_exactly(self, seed):
        plan = random_plan(random.Random(seed))
        # Through actual JSON, as a service job spec would carry it.
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    @pytest.mark.parametrize("seed", range(25))
    def test_round_trip_preserves_behaviour_not_just_equality(self, seed):
        plan = random_plan(random.Random(seed))
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.active == plan.active
        assert clone.degrading == plan.degrading
        for link in ("niu0^", "niu7^", "R1.0.2->R0.0.1", "x"):
            assert clone.model_for(link) == plan.model_for(link)
            assert clone.link_seed(link) == plan.link_seed(link)

    def test_empty_plan_round_trips(self):
        plan = FaultPlan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not plan.active and not plan.degrading

    def test_from_dict_tolerates_missing_keys(self):
        # Old serialized plans (pre-performance-faults) lack the new
        # event lists entirely.
        plan = FaultPlan.from_dict({"seed": 3, "drop_prob": 0.1})
        assert plan.seed == 3
        assert plan.drop_prob == 0.1
        assert plan.slowdowns == () and plan.jitters == ()


class TestLinkSeedDeterminism:
    def test_seed_depends_only_on_plan_seed_and_name(self):
        a = FaultPlan(seed=7, drop_prob=0.2)
        b = FaultPlan(seed=7, stalls=(StallEvent(node=1, start=0.0, duration=1.0),))
        # Same (plan seed, link name) -> same stream seed, no matter
        # what else the plan contains or in what order links appear.
        for link in ("niu0^", "niu1^", "R1.0.0->R0.0.0"):
            assert a.link_seed(link) == b.link_seed(link)

    def test_distinct_links_get_distinct_streams(self):
        plan = FaultPlan(seed=7)
        seeds = {plan.link_seed(f"niu{i}^") for i in range(64)}
        assert len(seeds) == 64

    def test_distinct_plan_seeds_shift_every_link(self):
        p0, p1 = FaultPlan(seed=0), FaultPlan(seed=1)
        assert all(
            p0.link_seed(f"niu{i}^") != p1.link_seed(f"niu{i}^")
            for i in range(8)
        )


class TestValidation:
    def test_probability_budget_enforced(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            FaultPlan(drop_prob=0.7, corrupt_prob=0.7)

    def test_event_validation_catches_bad_magnitudes(self):
        with pytest.raises(ValueError, match=">= 1"):
            SlowdownEvent(node=0, start=0.0, duration=1.0, factor=0.5)
        with pytest.raises(ValueError, match="positive"):
            BandwidthEvent(link="niu0^", start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError, match="positive"):
            JitterEvent(node=0, start=0.0, duration=1.0, amp=0.0)
        with pytest.raises(ValueError, match="positive"):
            BandwidthEvent(link="niu0^", start=0.0, duration=-1.0, factor=0.5)

    def test_degrading_tracks_performance_faults_only(self):
        assert not FaultPlan(drop_prob=0.5).degrading
        assert FaultPlan(
            slowdowns=(SlowdownEvent(node=0, start=0.0, duration=1.0, factor=2.0),)
        ).degrading
        assert FaultPlan(
            jitters=(JitterEvent(node=0, start=0.0, duration=1.0, amp=1e-6),)
        ).degrading
