"""Degradation pricing: one penalty formula, every tier, DES honesty."""

import math

import pytest

from repro.backend import resolve_backend
from repro.faults import (
    BandwidthEvent,
    DegradationSchedule,
    FaultPlan,
    JitterEvent,
    SlowdownEvent,
)
from repro.faults.degrade import CLEAN_WIRE, FRAG_BYTES, WireDegradation


def schedule(**kwargs):
    return DegradationSchedule(FaultPlan(**kwargs))


class TestWireDegradation:
    def test_clean_wire_costs_nothing(self):
        assert CLEAN_WIRE.clean
        assert CLEAN_WIRE.transfer_penalty(1 << 20, 150e6, n_packets=64) == 0.0

    def test_bandwidth_stretch_scales_serialization(self):
        w = WireDegradation(bw_factor=0.25)
        nbytes, bw = 4096, 150e6
        # 1/4 bandwidth = 4x serialization = 3x extra on top of clean.
        assert w.transfer_penalty(nbytes, bw) == pytest.approx(
            3.0 * nbytes / bw
        )

    def test_latency_accrues_per_packet(self):
        w = WireDegradation(extra_latency=1e-6)
        assert w.transfer_penalty(4096, 150e6, n_packets=8) == pytest.approx(
            8e-6
        )

    def test_jitter_priced_at_twice_expectation(self):
        # Jitter hooks land on both link directions of a flaky node.
        w = WireDegradation(jitter_mean=1e-6)
        assert w.transfer_penalty(8, 150e6, n_packets=1) == pytest.approx(2e-6)

    def test_combine_multiplies_bw_and_adds_delays(self):
        a = WireDegradation(bw_factor=0.5, extra_latency=1e-6)
        b = WireDegradation(bw_factor=0.5, jitter_mean=2e-6)
        c = a.combine(b)
        assert c.bw_factor == 0.25
        assert c.extra_latency == 1e-6
        assert c.jitter_mean == 2e-6


class TestSchedule:
    def test_cpu_factor_is_one_outside_the_window(self):
        sched = schedule(
            slowdowns=(SlowdownEvent(node=2, start=1.0, duration=2.0, factor=4.0),)
        )
        assert sched.cpu_factor(2, 0.5) == 1.0
        assert sched.cpu_factor(2, 1.5) == 4.0
        assert sched.cpu_factor(2, 3.5) == 1.0
        assert sched.cpu_factor(0, 1.5) == 1.0  # other nodes untouched

    def test_wire_resolves_niu_substring_to_node(self):
        sched = schedule(
            degradations=(
                BandwidthEvent(link="niu3^", start=0.0, duration=1.0, factor=0.5),
            )
        )
        assert sched.wire(3, 0.5).bw_factor == 0.5
        assert sched.wire(4, 0.5) is CLEAN_WIRE

    def test_router_event_degrades_every_endpoint(self):
        sched = schedule(
            degradations=(
                BandwidthEvent(link="R1.0.0", start=0.0, duration=1.0, factor=0.5),
            )
        )
        for node in (0, 5, 11):
            assert sched.wire(node, 0.5).bw_factor == 0.5

    def test_overlaps_and_degraded_nodes(self):
        sched = schedule(
            jitters=(JitterEvent(node=1, start=2.0, duration=1.0, amp=1e-6),)
        )
        assert not sched.overlaps(0.0, 2.0)  # half-open: ends exactly at 2
        assert sched.overlaps(2.5, 2.6)
        assert sched.degraded_nodes(2.0, 3.0) == {1}
        assert sched.degraded_nodes(0.0, 1.0) == set()
        assert sched.horizon == 3.0

    def test_gsum_penalty_charges_per_butterfly_round(self):
        sched = schedule(
            degradations=(
                BandwidthEvent(
                    link="niu0^", start=0.0, duration=1.0, factor=1.0,
                    extra_latency=1e-6,
                ),
            )
        )
        p2 = sched.gsum_penalty(0.5, 2, 8, 150e6)
        p16 = sched.gsum_penalty(0.5, 16, 8, 150e6)
        assert p16 == pytest.approx(4 * p2)  # log2(16) rounds vs 1
        assert sched.gsum_penalty(0.5, 1, 8, 150e6) == 0.0

    def test_exchange_penalty_fragments_bulk_transfers(self):
        sched = schedule(
            degradations=(
                BandwidthEvent(
                    link="niu0^", start=0.0, duration=1.0, factor=1.0,
                    extra_latency=1e-6,
                ),
            )
        )
        nbytes = 10 * FRAG_BYTES
        p = sched.exchange_penalty(0, 0.5, [nbytes], 150e6)
        assert p == pytest.approx(10 * 1e-6)  # one hold per fragment
        assert sched.exchange_penalty(0, 0.5, [0, 0], 150e6) == 0.0


class TestFragmentSync:
    def test_frag_bytes_matches_the_des_vi_fragment(self):
        # Pricing must not import the DES, so the constant is duplicated
        # and pinned here instead.
        from repro.niu.startx import VI_FRAG_BYTES

        assert FRAG_BYTES == VI_FRAG_BYTES


class TestTierConsistency:
    """All three tiers compose the SAME penalty on their clean quotes."""

    PLAN = FaultPlan(
        degradations=(
            BandwidthEvent(
                link="niu1^", start=0.0, duration=10.0, factor=0.25,
                extra_latency=2e-6,
            ),
        ),
        jitters=(JitterEvent(node=1, start=0.0, duration=10.0, amp=4e-6),),
    )

    @pytest.mark.parametrize("tier", ["des", "analytic", "hybrid"])
    def test_degraded_minus_clean_is_the_shared_formula(self, tier):
        edge_bytes = [2048, 2048, 0, 0]
        be = resolve_backend(tier)
        clean = be.exchange_time(edge_bytes, node=1, now=5.0)
        be.set_degradation(DegradationSchedule(self.PLAN))
        degraded = be.exchange_time(edge_bytes, node=1, now=5.0)
        expected = DegradationSchedule(self.PLAN).exchange_penalty(
            1, 5.0, edge_bytes, be.model.bandwidth
        )
        assert degraded - clean == pytest.approx(expected, rel=1e-9)
        assert expected > 0.0

    @pytest.mark.parametrize("tier", ["des", "analytic", "hybrid"])
    def test_gsum_surcharge_matches_across_tiers(self, tier):
        be = resolve_backend(tier)
        clean = be.gsum_time(8, now=5.0)
        be.set_degradation(DegradationSchedule(self.PLAN))
        degraded = be.gsum_time(8, now=5.0)
        expected = DegradationSchedule(self.PLAN).gsum_penalty(
            5.0, 8, 8, be.model.bandwidth
        )
        assert degraded - clean == pytest.approx(expected, rel=1e-9)
        assert expected > 0.0

    def test_timeless_queries_price_the_healthy_fabric(self):
        be = resolve_backend("analytic")
        healthy = be.exchange_time([2048], node=1)
        be.set_degradation(DegradationSchedule(self.PLAN))
        assert be.exchange_time([2048], node=1) == healthy  # no `now`
