"""The fault-campaign runner: scenarios, plans, audits, determinism."""

import pytest

from repro.faults.campaign import (
    SCENARIO_KINDS,
    TIMING_FRACS,
    WINDOW_FRAC,
    Scenario,
    audit_campaign,
    audit_detector,
    build_grid,
    build_plan,
    run_scenario,
)


class TestScenario:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_params_round_trip(self, kind):
        sc = Scenario(
            kind=kind,
            tier="hybrid",
            n_ranks=8,
            magnitude=0.0 if kind == "crash" else 4.0,
            timing="early",
            seed=3,
            mitigate=(kind == "cpu_slow"),
        )
        assert Scenario.from_params(sc.to_params()) == sc

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(kind="meteor", tier="analytic", n_ranks=8)

    def test_bad_timing_rejected(self):
        with pytest.raises(ValueError, match="timing"):
            Scenario(kind="stall", tier="analytic", n_ranks=8, timing="late-ish")

    def test_ranks_must_fill_whole_nodes(self):
        with pytest.raises(ValueError, match="multiple"):
            Scenario(kind="stall", tier="analytic", n_ranks=7)

    def test_scenario_id_is_unique_across_smoke_grid(self):
        grid = build_grid(smoke=True)
        ids = [sc.scenario_id for sc in grid]
        assert len(ids) == len(set(ids))
        # Every fault kind shows up in the smoke grid.
        assert {sc.kind for sc in grid} == set(SCENARIO_KINDS)


class TestBuildPlan:
    def test_same_scenario_same_plan(self):
        sc = Scenario(kind="link_bw", tier="analytic", n_ranks=8, magnitude=4.0)
        assert build_plan(sc, horizon=1.0) == build_plan(sc, horizon=1.0)

    def test_plan_round_trips_through_job_spec_form(self):
        for kind in SCENARIO_KINDS:
            sc = Scenario(
                kind=kind, tier="des", n_ranks=8,
                magnitude=0.0 if kind == "crash" else 2.0,
            )
            plan = build_plan(sc, horizon=0.5)
            assert type(plan).from_dict(plan.to_dict()) == plan

    def test_timing_places_the_window(self):
        horizon = 2.0
        for timing, frac in TIMING_FRACS.items():
            sc = Scenario(
                kind="cpu_slow", tier="analytic", n_ranks=8,
                magnitude=2.0, timing=timing,
            )
            (ev,) = build_plan(sc, horizon).slowdowns
            assert ev.start == pytest.approx(frac * horizon)

    def test_cpu_slow_window_stretches_with_magnitude(self):
        # A node slowed m-fold burns virtual time m times faster, so the
        # wall-window must scale by m to cover the same share of stages.
        horizon = 1.0
        base = WINDOW_FRAC * horizon
        for m in (2.0, 8.0):
            sc = Scenario(
                kind="cpu_slow", tier="analytic", n_ranks=8, magnitude=m
            )
            (ev,) = build_plan(sc, horizon).slowdowns
            assert ev.factor == m
            assert ev.duration == pytest.approx(base * m)

    def test_link_bw_magnitude_is_a_divisor(self):
        sc = Scenario(kind="link_bw", tier="analytic", n_ranks=8, magnitude=4.0)
        (ev,) = build_plan(sc, 1.0).degradations
        assert ev.factor == pytest.approx(0.25)


class TestDetectorAudit:
    def test_crash_is_declared_dead(self):
        sc = Scenario(kind="crash", tier="analytic", n_ranks=8)
        verdict = audit_detector(sc)
        assert verdict["declared"]
        assert verdict["declare_latency_s"] > 0

    @pytest.mark.parametrize("kind", ["cpu_slow", "link_bw", "nic_jitter", "stall"])
    def test_slow_is_never_declared_dead(self, kind):
        sc = Scenario(kind=kind, tier="analytic", n_ranks=8, magnitude=8.0)
        verdict = audit_detector(sc)
        assert not verdict["declared"]
        assert not verdict["false_positive"]

    def test_audit_is_deterministic(self):
        sc = Scenario(kind="nic_jitter", tier="analytic", n_ranks=8,
                      magnitude=4.0, seed=5)
        assert audit_detector(sc) == audit_detector(sc)


class TestRunScenario:
    def test_stall_scenario_passes_all_audits(self):
        sc = Scenario(kind="stall", tier="analytic", n_ranks=4, magnitude=4.0)
        payload = run_scenario(sc.to_params())
        assert payload["ok"], payload["audits"]
        assert payload["digest"] == payload["digest_clean"]
        assert payload["suspects"] == []

    def test_same_params_same_digest(self):
        sc = Scenario(kind="link_bw", tier="analytic", n_ranks=4, magnitude=4.0)
        a = run_scenario(sc.to_params())
        b = run_scenario(sc.to_params())
        assert a["digest"] == b["digest"]
        assert a["elapsed_fault"] == b["elapsed_fault"]

    def test_degradation_costs_time_but_not_bits(self):
        sc = Scenario(kind="cpu_slow", tier="analytic", n_ranks=4,
                      magnitude=4.0, mitigate=False)
        payload = run_scenario(sc.to_params())
        assert payload["audits"]["bit_exact"]
        assert payload["elapsed_fault"] > payload["elapsed_clean"]


class TestAuditCampaign:
    def _payloads(self, scenarios):
        return {sc.scenario_id: run_scenario(sc.to_params()) for sc in scenarios}

    def test_cross_tier_band_compares_against_des(self):
        scenarios = [
            Scenario(kind="stall", tier=tier, n_ranks=4, magnitude=4.0)
            for tier in ("des", "analytic")
        ]
        scorecard = audit_campaign(scenarios, self._payloads(scenarios))
        assert scorecard["ok"], scorecard["failures"]
        assert scorecard["n_scenarios"] == 2
        assert scorecard["max_tier_error"] <= scorecard["tier_band"]

    def test_failures_are_reported_not_swallowed(self):
        sc = Scenario(kind="stall", tier="analytic", n_ranks=4, magnitude=4.0)
        payload = run_scenario(sc.to_params())
        broken = dict(payload, ok=False,
                      audits=dict(payload["audits"], bit_exact=False))
        scorecard = audit_campaign([sc], {sc.scenario_id: broken})
        assert not scorecard["ok"]
        assert scorecard["n_fail"] == 1
        assert scorecard["failures"]

    def test_missing_result_is_a_failure(self):
        sc = Scenario(kind="stall", tier="analytic", n_ranks=4, magnitude=4.0)
        scorecard = audit_campaign([sc], {})
        assert not scorecard["ok"]
        assert scorecard["failures"][0]["audit"] == "completed"


def test_campaign_is_a_service_job_kind():
    from repro.service.jobs import JOB_KINDS

    assert "campaign" in JOB_KINDS
