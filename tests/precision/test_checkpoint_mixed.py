"""Mixed-dtype checkpoint round trips (the precision regression of the
restart path): a float32-storage model must restart bit-exactly from
both the global archive and per-rank shards, with dtypes preserved."""

import numpy as np

from repro.gcm.checkpoint import (
    load_checkpoint,
    load_state_shard,
    save_checkpoint,
    save_state_shard,
)
from repro.gcm.ocean import ocean_model
from repro.precision import PrecisionConfig

FIELDS = ("u", "v", "theta", "tracer", "ps")

#: float32 state everywhere, but a float64 wire so the exchange/gsum
#: paths stay on their default branches (storage is what's under test).
STATE32 = PrecisionConfig.preset("all64").with_cells(
    [(f, "state") for f in ("u", "v", "w", "theta", "tracer", "ps", "phy")],
    "float32",
    name="state32",
)


def fresh(px=2, py=2, precision=STATE32):
    return ocean_model(
        nx=16, ny=8, nz=3, px=px, py=py, dt=600.0, precision=precision
    )


def globals_of(m):
    return {n: m.state.to_global(n) for n in FIELDS}


def test_mixed_state_is_actually_float32():
    m = fresh()
    for n in ("u", "theta", "ps"):
        for tile in m.state[n]:
            assert tile.dtype == np.float32, n


def test_global_round_trip_bit_exact_at_float32(tmp_path):
    a = fresh()
    a.run(6)
    reference = globals_of(a)

    b = fresh()
    b.run(3)
    ckpt = save_checkpoint(b, tmp_path / "mid")
    c = fresh()
    load_checkpoint(c, ckpt)
    c.run(3)

    for n in FIELDS:
        got = c.state.to_global(n)
        assert got.dtype == reference[n].dtype, n
        np.testing.assert_array_equal(got, reference[n], err_msg=n)


def test_checkpoint_payload_keeps_narrow_dtype(tmp_path):
    """The archive stores float32 fields at float32 (no silent widening
    on disk), and restoring into a float32 model keeps float32 tiles."""
    a = fresh()
    a.run(2)
    path = save_checkpoint(a, tmp_path / "narrow")
    payload = np.load(path)
    for n in FIELDS:
        key = ("f2_" if n == "ps" else "f3_") + n
        assert payload[key].dtype == np.float32, n
    b = fresh()
    load_checkpoint(b, path)
    for n in FIELDS:
        for tile in b.state[n]:
            assert tile.dtype == np.float32, n


def test_shard_round_trip_bit_exact_at_float32(tmp_path):
    a = fresh()
    a.run(4)
    reference = globals_of(a)

    b = fresh()
    b.run(2)
    for rank in range(b.decomp.n_ranks):
        save_state_shard(b, rank, tmp_path / f"shard-{rank}")
    c = fresh()
    for rank in range(c.decomp.n_ranks):
        meta = load_state_shard(c, rank, tmp_path / f"shard-{rank}")
    c.state.time = meta["time"]
    c.state.step_count = meta["step_count"]
    c._first_step = meta["first_step"]
    c.run(2)

    for n in FIELDS:
        np.testing.assert_array_equal(
            c.state.to_global(n), reference[n], err_msg=n
        )


def test_mixed_and_pure_models_checkpoint_independently(tmp_path):
    """A float64 model restarted from its own checkpoint is unaffected
    by the precision plumbing (the all64 default regression)."""
    a = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    a.run(4)
    reference = globals_of(a)

    b = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    b.run(2)
    p = save_checkpoint(b, tmp_path / "pure")
    c = ocean_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    load_checkpoint(c, p)
    c.run(2)
    for n in FIELDS:
        assert c.state.to_global(n).dtype == np.float64
        np.testing.assert_array_equal(
            c.state.to_global(n), reference[n], err_msg=n
        )
