"""PrecisionConfig: presets, JSON round trip and dtype plumbing."""

import numpy as np
import pytest

from repro.precision import (
    PRECISION_FIELDS,
    SITES,
    PrecisionConfig,
    resolve_precision,
)


class TestPresets:
    def test_all64_is_all64(self):
        cfg = PrecisionConfig.preset("all64")
        assert cfg.is_all64
        assert all(
            cfg.precision(f, s) == "float64" for f in PRECISION_FIELDS for s in SITES
        )

    def test_wire32_narrows_only_the_wires(self):
        cfg = PrecisionConfig.preset("wire32")
        for f in PRECISION_FIELDS:
            assert cfg.precision(f, "state") == "float64"
            assert cfg.precision(f, "cg_internals") == "float64"
            assert cfg.precision(f, "exchange_wire") == "float32"
            assert cfg.precision(f, "gsum_wire") == "float32"

    def test_all32(self):
        cfg = PrecisionConfig.preset("all32")
        assert not cfg.is_all64
        assert cfg.cells_at("float64") == []

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            PrecisionConfig.preset("half")


class TestJsonRoundTrip:
    @pytest.mark.parametrize("preset", ["all64", "wire32", "all32"])
    def test_presets_round_trip(self, preset):
        cfg = PrecisionConfig.preset(preset)
        again = PrecisionConfig.from_json(cfg.to_json())
        assert again == cfg

    def test_with_cells_round_trips(self):
        cfg = PrecisionConfig.preset("all32").with_cells(
            [("theta", "state"), ("ps", "exchange_wire")], "float64"
        )
        again = PrecisionConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert again.precision("theta", "state") == "float64"
        assert again.precision("u", "state") == "float32"

    def test_bad_cell_rejected(self):
        with pytest.raises(ValueError):
            PrecisionConfig.preset("all64").with_cells(
                [("vorticity", "state")], "float32"
            )


class TestDtypePlumbing:
    def test_state_dtypes_cover_derived_fields(self):
        """Flipping a prognostic field's storage must flip its AB2
        G-term history too (they difference against each other)."""
        cfg = PrecisionConfig.preset("all64").with_cells(
            [("u", "state")], "float32"
        )
        dtypes = cfg.state_dtypes()
        assert dtypes["u"] == np.dtype(np.float32)
        assert dtypes["gu"] == np.dtype(np.float32)
        assert dtypes["gu_prev"] == np.dtype(np.float32)
        assert dtypes["v"] == np.dtype(np.float64)

    def test_exchange_wire_dtype_none_when_f64(self):
        cfg = PrecisionConfig.preset("all64")
        assert cfg.exchange_wire_dtype("u") is None
        cfg = PrecisionConfig.preset("wire32")
        assert cfg.exchange_wire_dtype("u") == np.dtype(np.float32)

    def test_gsum_nbytes(self):
        assert PrecisionConfig.preset("all64").gsum_nbytes() == 8
        assert PrecisionConfig.preset("wire32").gsum_nbytes() == 4
        # one gsum field back at float64 keeps the shared stream at 8
        mixed = PrecisionConfig.preset("wire32").with_cells(
            [("theta", "gsum_wire")], "float64"
        )
        assert mixed.gsum_nbytes() == 8

    def test_scoreboard_args(self):
        assert PrecisionConfig.preset("all64").scoreboard_args() == {
            "itemsize": 8, "gsum_nbytes": 8,
        }
        assert PrecisionConfig.preset("wire32").scoreboard_args() == {
            "itemsize": 4, "gsum_nbytes": 4,
        }

    def test_grid_dtype_follows_state(self):
        assert PrecisionConfig.preset("all32").grid_dtype() == np.dtype(np.float32)
        assert PrecisionConfig.preset("wire32").grid_dtype() == np.dtype(np.float64)


class TestResolve:
    def test_none_is_all64(self):
        assert resolve_precision(None).is_all64

    def test_string_is_preset(self):
        assert resolve_precision("wire32") == PrecisionConfig.preset("wire32")

    def test_dict_and_config_pass_through(self):
        cfg = PrecisionConfig.preset("all32")
        assert resolve_precision(cfg) is cfg
        assert resolve_precision(cfg.to_dict()) == cfg
