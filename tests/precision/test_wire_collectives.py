"""Wire-dtype semantics of the collectives: exact byte accounting and
value behaviour for all six operations."""

import numpy as np
import pytest

from repro.collectives.schedules import OPS, build, candidates
from repro.collectives.semantics import (
    ItemStore,
    reference_result,
    run_schedule,
)

NS = (2, 5, 8)


def inputs_for(op, n, rng, elems=4):
    if op == "barrier":
        return [None] * n
    if op == "alltoall":
        return [rng.standard_normal((n, elems)) for _ in range(n)]
    return [rng.standard_normal(elems) for _ in range(n)]


def default_alg(op, n):
    return next(iter(candidates(op, n)))


class TestByteAccounting:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("wire_dtype", [np.float64, np.float32])
    def test_serialized_nbytes_is_exact(self, op, n, wire_dtype):
        """``serialized_nbytes`` must equal the length of the literal
        message for every op, at both wire widths."""
        rng = np.random.default_rng(hash((op, n)) % 2**32)
        sch = build(op, default_alg(op, n), n, 4 * 8)
        inp = inputs_for(op, n, rng)
        stores = [
            ItemStore(sch, r, inp[r], wire_dtype=wire_dtype) for r in range(n)
        ]
        # replay the schedule by hand so every serialize is checked
        for rnd in sch.rounds:
            wire = []
            for s in rnd:
                data = stores[s.src].serialize(s.items)
                assert stores[s.src].serialized_nbytes(s.items) == len(data)
                wire.append((s.dst, data))
            for dst, data in wire:
                stores[dst].absorb(data)

    @pytest.mark.parametrize("op", [o for o in OPS if o != "barrier"])
    def test_float32_wire_halves_payload(self, op):
        n = 8
        rng = np.random.default_rng(3)
        sch = build(op, default_alg(op, n), n, 4 * 8)
        inp = inputs_for(op, n, rng)
        s64 = ItemStore(sch, 0, inp[0], wire_dtype=np.float64)
        s32 = ItemStore(sch, 0, inp[0], wire_dtype=np.float32)
        items = [i for i in s64.items]
        if items:
            hdr = 2 + 9 * len(items)  # count + per-item ">BhhI" headers
            pay64 = s64.serialized_nbytes(items) - hdr
            pay32 = s32.serialized_nbytes(items) - hdr
            assert pay32 * 2 == pay64

    def test_bad_wire_dtype_rejected(self):
        sch = build("allreduce", default_alg("allreduce", 4), 4, 32)
        with pytest.raises(ValueError, match="wire dtype"):
            ItemStore(sch, 0, np.zeros(4), wire_dtype=np.int16)


class TestValueSemantics:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("n", NS)
    def test_float64_wire_stays_bit_exact(self, op, n):
        rng = np.random.default_rng(hash((op, n, "f64")) % 2**32)
        inp = inputs_for(op, n, rng)
        sch = build(op, default_alg(op, n), n, 4 * 8)
        got = run_schedule(sch, inp, wire_dtype=np.float64)
        ref = reference_result(op, inp, n)
        for g, r in zip(got, ref):
            if op == "barrier":
                assert g is None
            else:
                np.testing.assert_array_equal(g, r)

    @pytest.mark.parametrize("op", ["broadcast", "allgather", "alltoall", "barrier"])
    @pytest.mark.parametrize("n", NS)
    def test_float32_exact_inputs_survive_the_wire(self, op, n):
        """Inputs already representable at float32 cross a float32 wire
        without loss for the data-movement ops (no mid-wire reduction
        can manufacture unrepresentable partials)."""
        rng = np.random.default_rng(hash((op, n, "f32")) % 2**32)
        inp = inputs_for(op, n, rng)
        if op != "barrier":
            inp = [np.asarray(x).astype(np.float32).astype(np.float64) for x in inp]
        sch = build(op, default_alg(op, n), n, 4 * 4)
        got = run_schedule(sch, inp, wire_dtype=np.float32)
        ref = reference_result(op, inp, n)
        for g, r in zip(got, ref):
            if op == "barrier":
                assert g is None
            else:
                np.testing.assert_array_equal(g, r)

    @pytest.mark.parametrize("op", ["allreduce", "reduce_scatter"])
    @pytest.mark.parametrize("n", NS)
    def test_float32_wire_quantizes_within_eps(self, op, n):
        """Reducing ops quantize partials in transit: the result lands
        within float32 relative error of the float64 reference."""
        rng = np.random.default_rng(n)
        inp = [rng.standard_normal(6) for _ in range(n)]
        sch = build(op, default_alg(op, n), n, 48)
        got = run_schedule(sch, inp, wire_dtype=np.float32)
        ref = reference_result(op, inp, n)
        for g, r in zip(got, ref):
            np.testing.assert_allclose(g, r, rtol=1e-5, atol=1e-6)
