"""Wire-dtype semantics of the halo exchange and the runtime wrappers:
both directions (x with periodic wrap, y with walls), corners, and
byte accounting at the narrowed itemsize."""

import numpy as np
import pytest

from repro.parallel.exchange import HaloExchanger, exchange_halos
from repro.parallel.runtime import LockstepRuntime
from repro.parallel.tiling import Decomposition


def global_field(nx, ny, nz=None, seed=0):
    rng = np.random.default_rng(seed)
    shape = (ny, nx) if nz is None else (nz, ny, nx)
    return rng.standard_normal(shape)


def scatter(decomp, g):
    return HaloExchanger(decomp).scatter_global(g)


@pytest.mark.parametrize("px,py,olx", [(4, 4, 3), (2, 4, 1), (8, 1, 3), (4, 2, 2)])
@pytest.mark.parametrize("nz", [None, 3])
def test_float32_wire_equals_prequantized_exchange(px, py, olx, nz):
    """Exchanging float64 tiles over a float32 wire must fill exactly
    the halos a float64 exchange of the pre-quantized global field
    would — in both directions and in the corners (the pass-2 corner
    resend re-casts already-quantized data, which is an identity)."""
    d = Decomposition(32, 16, px, py, olx=olx)
    g = global_field(32, 16, nz=nz, seed=7)

    tiles = scatter(d, g)
    exchange_halos(d, tiles, wire_dtype=np.float32)

    ref = scatter(d, g.astype(np.float32).astype(np.float64))
    exchange_halos(d, ref)

    o = d.olx
    for rank, (got, want) in enumerate(zip(tiles, ref)):
        t = d.tile(rank)
        interior = (..., slice(o, o + t.ny), slice(o, o + t.nx))
        # interiors are never cast: still the original float64 bits
        np.testing.assert_array_equal(got[interior], g[
            ..., t.y0 : t.y0 + t.ny, t.x0 : t.x0 + t.nx
        ], err_msg=f"rank {rank} interior")
        # halos carry exactly one trip through the float32 wire
        halo = np.ones(got.shape, dtype=bool)
        halo[interior] = False
        np.testing.assert_array_equal(
            got[halo], want[halo], err_msg=f"rank {rank} halo"
        )


def test_float32_wire_idempotent():
    """A second exchange over the same wire changes no bits."""
    d = Decomposition(16, 8, 2, 2, olx=2)
    tiles = scatter(d, global_field(16, 8, seed=3))
    exchange_halos(d, tiles, wire_dtype=np.float32)
    snap = [t.copy() for t in tiles]
    exchange_halos(d, tiles, wire_dtype=np.float32)
    for a, b in zip(snap, tiles):
        np.testing.assert_array_equal(a, b)


def test_float64_wire_is_a_no_op_cast():
    d = Decomposition(16, 8, 2, 2, olx=2)
    a = scatter(d, global_field(16, 8, seed=5))
    b = [t.copy() for t in a]
    exchange_halos(d, a)
    exchange_halos(d, b, wire_dtype=np.float64)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestRuntimeWire:
    def make_rt(self, px=2, py=2):
        return LockstepRuntime(Decomposition(16, 8, px, py, olx=2))

    def test_exchange_itemsize_prices_the_wire(self):
        """Halving the itemsize must halve the exchange's virtual cost
        (latency terms aside, the same edges carry half the bytes)."""
        rt4, rt8 = self.make_rt(), self.make_rt()
        f4 = scatter(rt4.decomp, global_field(16, 8, seed=1))
        f8 = scatter(rt8.decomp, global_field(16, 8, seed=1))
        rt8.exchange([f8], itemsize=8)
        rt4.exchange([f4], itemsize=4)
        assert 0 < rt4.elapsed < rt8.elapsed

    def test_exchange_itemsize_length_mismatch_rejected(self):
        rt = self.make_rt()
        f = scatter(rt.decomp, global_field(16, 8, seed=1))
        with pytest.raises(ValueError):
            rt.exchange([f], itemsize=[4, 8])

    def test_exchange_wire_dtype_casts_per_field(self):
        rt = self.make_rt()
        g = global_field(16, 8, seed=2)
        cast = scatter(rt.decomp, g)
        kept = scatter(rt.decomp, g)
        rt.exchange([cast, kept], itemsize=[4, 8],
                    wire_dtypes=[np.float32, None])
        ref32 = scatter(rt.decomp, g)
        exchange_halos(rt.decomp, ref32, wire_dtype=np.float32)
        ref64 = scatter(rt.decomp, g)
        exchange_halos(rt.decomp, ref64)
        for got, want in zip(cast, ref32):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(kept, ref64):
            np.testing.assert_array_equal(got, want)

    def test_global_sum_float32_wire_quantizes(self):
        """The gsum wire quantizes each rank's partial on the way in and
        the total on the way out."""
        rt = self.make_rt()
        vals = [1.0 + 1e-12, np.pi, -2.0 / 3.0, 1e-9]
        got = rt.global_sum(vals, nbytes=4, wire_dtype=np.float32)
        q = np.asarray(vals).astype(np.float32).astype(np.float64)
        want = float(np.float32(self.make_rt().global_sum(list(q))))
        assert got == want

    def test_global_sum_float64_wire_bit_exact(self):
        rt, ref = self.make_rt(), self.make_rt()
        vals = [1.0 + 1e-12, np.pi, -2.0 / 3.0, 1e-9]
        assert rt.global_sum(vals, wire_dtype=np.float64) == ref.global_sum(vals)

    def test_gsum_nbytes_prices_the_wire(self):
        rt4, rt8 = self.make_rt(), self.make_rt()
        rt8.global_sum([1.0] * 4, nbytes=8)
        rt4.global_sum([1.0] * 4, nbytes=4)
        assert 0 < rt4.elapsed <= rt8.elapsed
