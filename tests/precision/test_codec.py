"""Property tests for the casting wire codec (cast == pack->unpack,
idempotence, exact byte accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import WireCodec, quantize_gsum

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e30, max_value=1e30
)


def arrays(draw, n):
    return np.array(draw(st.lists(finite_doubles, min_size=n, max_size=n)))


class TestCastMatchesWire:
    @given(st.data(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_cast_equals_pack_unpack(self, data, n):
        """``cast`` must reproduce bit-for-bit what a receiver would see
        after the literal big-endian wire round trip."""
        arr = arrays(data.draw, n)
        codec = WireCodec(np.float32)
        cast = np.asarray(codec.cast(arr), dtype=np.float64)
        wire = codec.roundtrip(arr)
        np.testing.assert_array_equal(cast, wire)

    @given(st.data(), st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_cast_is_idempotent(self, data, n):
        """A second trip through the wire changes nothing (the pass-2
        corner resend of the halo exchange relies on this)."""
        arr = arrays(data.draw, n)
        codec = WireCodec(np.float32)
        once = np.asarray(codec.cast(arr), dtype=np.float64)
        twice = np.asarray(codec.cast(once), dtype=np.float64)
        np.testing.assert_array_equal(once, twice)

    @given(st.data(), st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_float64_wire_is_identity(self, data, n):
        arr = arrays(data.draw, n)
        codec = WireCodec(np.float64)
        assert codec.cast(arr) is arr
        np.testing.assert_array_equal(codec.roundtrip(arr), arr)


class TestByteAccounting:
    @pytest.mark.parametrize("dtype,itemsize", [(np.float32, 4), (np.float64, 8)])
    def test_pack_length_is_exact(self, dtype, itemsize):
        codec = WireCodec(dtype)
        arr = np.linspace(0.0, 1.0, 17)
        data = codec.pack(arr)
        assert len(data) == codec.nbytes(arr.size) == 17 * itemsize

    def test_counter_accumulates_cast_and_pack(self):
        codec = WireCodec(np.float32)
        codec.cast(np.zeros(10))
        codec.pack(np.zeros(3))
        assert codec.bytes_packed == (10 + 3) * 4

    def test_unpack_offset(self):
        codec = WireCodec(np.float32)
        arr = np.arange(8.0)
        data = b"\x00" * 12 + codec.pack(arr)
        out = codec.unpack(data, count=8, offset=12).astype(np.float64)
        np.testing.assert_array_equal(out, arr.astype(np.float32))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="wire dtype"):
            WireCodec(np.int32)


class TestQuantizeGsum:
    def test_float64_returns_none(self):
        assert quantize_gsum([1.0, 2.0], np.float64) is None

    def test_float32_quantizes_each_partial(self):
        partials = [1.0 + 1e-12, np.pi]
        got = quantize_gsum(partials, np.float32)
        expected = [float(np.float32(p)) for p in partials]
        assert got == expected
        assert all(isinstance(v, float) for v in got)
