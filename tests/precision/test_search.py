"""The accuracy-gated search: gates, ddmin bisection and the persisted
tuned artifact (smoke scale, inline evaluation)."""

import numpy as np
import pytest

from repro.precision import PrecisionConfig
from repro.precision.gates import gate_candidate, reference_diagnostics
from repro.precision.search import (
    config_for_reverts,
    leaf_groups,
    load_tuned_config,
    result_digest,
    run_candidate,
    tune_precision,
    wire_byte_reduction,
)


@pytest.fixture(scope="module")
def baseline():
    return reference_diagnostics(smoke=True)


class TestGates:
    def test_baseline_is_finite_and_converged(self, baseline):
        assert baseline["finite"] and baseline["converged"]
        assert np.all(np.isfinite(baseline["sst"]))

    def test_all64_passes_trivially(self, baseline):
        report = gate_candidate(
            PrecisionConfig.preset("all64"), baseline, smoke=True
        )
        assert report.passed and not report.failures
        assert all(err == 0.0 for err in report.errors.values())

    def test_wire32_passes_the_gates(self, baseline):
        report = gate_candidate(
            PrecisionConfig.preset("wire32"), baseline, smoke=True
        )
        assert report.passed, report.failures
        assert all(
            report.errors[k] <= report.tolerances[k] for k in report.errors
        )

    def test_report_round_trips_to_dict(self, baseline):
        report = gate_candidate(
            PrecisionConfig.preset("all64"), baseline, smoke=True
        )
        d = report.to_dict()
        assert d["passed"] and d["config_name"] == "all64"
        assert set(d["errors"]) == set(d["tolerances"])


class TestSearchPlumbing:
    def test_leaf_groups_cover_every_revertible_cell(self):
        groups = leaf_groups()
        names = [g[0] for g in groups]
        assert len(names) == len(set(names)) == 16
        assert sum(1 for n in names if n.startswith("state:")) == 7
        assert sum(1 for n in names if n.startswith("exchange_wire:")) == 7
        assert "gsum_wire" in names and "cg_internals" in names

    def test_config_for_reverts(self):
        groups = [g for g in leaf_groups() if g[0] == "state:theta"]
        cfg = config_for_reverts(groups)
        assert cfg.precision("theta", "state") == "float64"
        assert cfg.precision("u", "state") == "float32"
        assert cfg.precision("theta", "exchange_wire") == "float32"

    def test_result_digest_deterministic(self, baseline):
        a = gate_candidate(PrecisionConfig.preset("all64"), baseline, smoke=True)
        b = gate_candidate(PrecisionConfig.preset("all64"), baseline, smoke=True)
        assert result_digest(a) == result_digest(b)

    def test_run_candidate_matches_direct_gate(self, baseline):
        """Inline and worker-path evaluation of the same candidate must
        agree on the digest (the service determinism contract)."""
        params = {
            "config": PrecisionConfig.preset("wire32").to_dict(),
            "baseline": baseline,
            "smoke": True,
        }
        out = run_candidate(params)
        direct = gate_candidate(
            PrecisionConfig.preset("wire32"), baseline, smoke=True
        )
        assert out["passed"] and direct.passed
        assert out["digest"] == result_digest(direct)
        assert out["report"] == direct.to_dict()

    def test_wire_byte_reduction_presets(self):
        zero = wire_byte_reduction(PrecisionConfig.preset("all64"))
        half = wire_byte_reduction(PrecisionConfig.preset("wire32"))
        assert zero["reduction"] == 0.0
        assert half["reduction"] == pytest.approx(0.5)
        assert half["wire_bytes_config"] * 2 == half["wire_bytes_all64"]


class TestTunePrecision:
    def test_smoke_search_converges(self, tmp_path):
        result = tune_precision(smoke=True, out_dir=tmp_path)
        assert result["passed"]
        # non-trivial: pure all32 fails, so something was reverted
        assert any(not s["passed"] for s in result["trajectory"])
        assert result["reverted_groups"]
        # every reverted group is a real leaf
        names = {g[0] for g in leaf_groups()}
        assert set(result["reverted_groups"]) <= names
        # the acceptance criterion: >= 50% of the wire bytes gone
        assert result["wire"]["reduction"] >= 0.5
        # the artifact round-trips
        tuned = load_tuned_config(tmp_path)
        assert tuned is not None
        assert tuned.to_dict() == result["tuned"]

    def test_load_tuned_config_absent(self, tmp_path):
        assert load_tuned_config(tmp_path / "nope") is None
