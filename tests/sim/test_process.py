"""Unit tests for generator-based processes and waitables."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Interrupt
from repro.sim.process import BaseEvent


def test_process_sequences_timeouts():
    eng = Engine()
    trace = []

    def proc():
        trace.append(eng.now)
        yield eng.timeout(1.0)
        trace.append(eng.now)
        yield eng.timeout(2.5)
        trace.append(eng.now)

    eng.process(proc())
    eng.run()
    assert trace == [0.0, 1.0, 3.5]


def test_process_return_value_becomes_event_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return 42

    p = eng.process(proc())
    eng.run()
    assert p.triggered and p.value == 42


def test_process_can_join_another_process():
    eng = Engine()
    results = []

    def worker():
        yield eng.timeout(2.0)
        return "done"

    def waiter(w):
        val = yield w
        results.append((eng.now, val))

    w = eng.process(worker())
    eng.process(waiter(w))
    eng.run()
    assert results == [(2.0, "done")]


def test_yield_non_waitable_raises():
    eng = Engine()

    def bad():
        yield 5

    eng.process(bad())
    with pytest.raises(TypeError, match="non-waitable"):
        eng.run()


def test_timeout_value_passthrough():
    eng = Engine()
    got = []

    def proc():
        from repro.sim.process import Timeout

        v = yield Timeout(eng, 1.0, value="payload")
        got.append(v)

    eng.process(proc())
    eng.run()
    assert got == ["payload"]


def test_allof_waits_for_all():
    eng = Engine()
    got = []

    def proc():
        evs = [eng.timeout(3.0), eng.timeout(1.0)]
        vals = yield AllOf(eng, evs)
        got.append((eng.now, vals))

    eng.process(proc())
    eng.run()
    assert got[0][0] == 3.0


def test_allof_empty_fires_immediately():
    eng = Engine()
    got = []

    def proc():
        vals = yield AllOf(eng, [])
        got.append((eng.now, vals))

    eng.process(proc())
    eng.run()
    assert got == [(0.0, [])]


def test_anyof_fires_on_first():
    eng = Engine()
    got = []

    def proc():
        idx, _val = yield AnyOf(eng, [eng.timeout(3.0), eng.timeout(1.0)])
        got.append((eng.now, idx))

    eng.process(proc())
    eng.run()
    assert got == [(1.0, 1)]


def test_anyof_requires_events():
    eng = Engine()
    with pytest.raises(ValueError):
        AnyOf(eng, [])


def test_interrupt_is_catchable():
    eng = Engine()
    trace = []

    def victim():
        try:
            yield eng.timeout(100.0)
        except Interrupt as it:
            trace.append((eng.now, it.cause))
        yield eng.timeout(1.0)
        trace.append(eng.now)

    def attacker(v):
        yield eng.timeout(2.0)
        v.interrupt("stop")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert trace == [(2.0, "stop"), 3.0]


def test_unhandled_interrupt_kills_process():
    eng = Engine()

    def victim():
        yield eng.timeout(100.0)

    def attacker(v):
        yield eng.timeout(1.0)
        v.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    death_time = []
    v.subscribe(lambda ev: death_time.append(eng.now))
    eng.run()
    assert v.triggered
    assert death_time == [1.0]  # died at the interrupt, not at t=100


def test_interrupt_after_completion_is_noop():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)
        return "ok"

    p = eng.process(quick())
    eng.run()
    p.interrupt()  # must not raise
    eng.run()
    assert p.value == "ok"


def test_failed_event_raises_inside_process():
    eng = Engine()
    caught = []

    def proc(ev):
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    ev = BaseEvent(eng)
    eng.process(proc(ev))
    eng.schedule(1.0, lambda: ev.fail(RuntimeError("boom")))
    eng.run()
    assert caught == ["boom"]


def test_event_double_fire_rejected():
    eng = Engine()
    ev = BaseEvent(eng)
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_subscribe_after_trigger_still_delivers():
    eng = Engine()
    ev = BaseEvent(eng)
    ev.succeed("late")
    got = []

    def proc():
        v = yield ev
        got.append(v)

    eng.process(proc())
    eng.run()
    assert got == ["late"]
