"""Property-based tests of the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Store


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30)
)
def test_final_time_is_max_delay(delays):
    eng = Engine()
    for d in delays:
        eng.schedule(d, lambda: None)
    assert eng.run() == max(delays)


@given(st.lists(st.integers(), min_size=1, max_size=100))
def test_store_preserves_fifo_for_any_item_sequence(items):
    eng = Engine()
    store = Store(eng)
    got = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == items


@given(
    st.lists(st.integers(), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_bounded_store_never_loses_items(items, capacity):
    """Back-pressure may delay but must never drop or reorder items."""
    eng = Engine()
    store = Store(eng, capacity=capacity)
    got = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            yield eng.timeout(1.0)  # slow consumer forces back-pressure
            got.append((yield store.get()))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == items


@given(st.data())
@settings(max_examples=50)
def test_interleaved_timeouts_deterministic(data):
    """Two runs of the same random schedule give identical traces."""
    delays = data.draw(
        st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=20)
    )

    def run_once():
        eng = Engine()
        trace = []

        def proc(d, tag):
            yield eng.timeout(d)
            trace.append((eng.now, tag))

        for i, d in enumerate(delays):
            eng.process(proc(d, i))
        eng.run()
        return trace

    assert run_once() == run_once()
