"""The engine's deadlock watchdog: quiescence with blocked processes
must surface as a diagnostic naming who is stuck on what, never as a
silent return (or, in real time, an infinite hang)."""

import pytest

from repro.sim import DeadlockError, Engine, Signal, Store


class TestWatchdog:
    def test_blocked_worker_raises_with_name_and_wait(self):
        eng = Engine()
        store = Store(eng, name="inbox")

        def worker():
            yield store.get()

        eng.process(worker(), name="consumer")
        with pytest.raises(DeadlockError, match=r"consumer waiting on Store\(inbox\).get"):
            eng.run(watchdog=True)

    def test_multiple_blocked_processes_all_named(self):
        eng = Engine()
        sig = Signal(eng, name="never")

        def worker():
            yield sig.wait()

        for i in range(3):
            eng.process(worker(), name=f"rank{i}")
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        msg = str(ei.value)
        assert "3 blocked process(es)" in msg
        for i in range(3):
            assert f"rank{i}" in msg
        assert "Signal(never).wait" in msg

    def test_blocked_list_carries_processes(self):
        eng = Engine()
        store = Store(eng)

        def worker():
            yield store.get()

        eng.process(worker(), name="w")
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        assert [p.name for p in ei.value.blocked] == ["w"]

    def test_daemons_do_not_trigger(self):
        """Server loops are infrastructure: a run that quiesces with only
        daemons blocked is a *completed* run."""
        eng = Engine()
        store = Store(eng)

        def server():
            while True:
                yield store.get()

        eng.process(server(), name="server", daemon=True)
        eng.run(watchdog=True)  # no raise

    def test_watchdog_off_by_default(self):
        eng = Engine()
        store = Store(eng)

        def worker():
            yield store.get()

        eng.process(worker(), name="w")
        eng.run()  # legacy behaviour: quiesce silently

    def test_completed_workers_do_not_trigger(self):
        eng = Engine()
        done = []

        def worker():
            yield eng.timeout(1.0)
            done.append(True)

        eng.process(worker(), name="w")
        eng.run(watchdog=True)
        assert done == [True]

    def test_until_cap_does_not_false_positive(self):
        """Stopping at a time horizon is not quiescence: a process merely
        sleeping past ``until`` must not be reported as deadlocked."""
        eng = Engine()

        def sleeper():
            yield eng.timeout(10.0)

        eng.process(sleeper(), name="s")
        eng.run(until=1.0, watchdog=True)  # no raise

    def test_crashed_node_queue_is_annotated(self):
        """A stall on a dead node's queue must read as an unrecovered
        crash, not as a communication-protocol bug."""
        eng = Engine()
        store = Store(eng, name="pio-rx[node1]")

        def worker():
            yield store.get()

        eng.process(worker(), name="rank0.node0")
        eng.crashed_nodes[1] = 0.5
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        msg = str(ei.value)
        assert "node 1 (crashed at t=0.5 s)" in msg
        assert "enable crash recovery" in msg
        assert ei.value.crashed == {1: 0.5}

    def test_crash_annotation_does_not_match_longer_ids(self):
        """node1 must not be blamed for a stall on node12's queue."""
        eng = Engine()
        store = Store(eng, name="pio-rx[node12]")

        def worker():
            yield store.get()

        eng.process(worker(), name="rank12.node12")
        eng.crashed_nodes[1] = 0.5
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        assert "queue belongs to" not in str(ei.value)

    def test_unblocked_after_fire_not_reported(self):
        eng = Engine()
        sig = Signal(eng, name="go")
        got = []

        def worker():
            yield sig.wait()
            got.append(eng.now)

        def firer():
            yield eng.timeout(2.0)
            sig.fire()

        eng.process(worker(), name="w")
        eng.process(firer(), name="f")
        eng.run(watchdog=True)
        assert got == [2.0]

    def test_crash_annotation_requires_left_token_boundary(self):
        """Crashed node 1 must not be blamed for a process whose name
        merely *ends* in node1 ('badnode1') — but the genuine node1
        queue later in the same text must still be found (the scan
        resumes past the rejected occurrence)."""
        eng = Engine()
        store = Store(eng, name="pio-rx[node1]")

        def worker():
            yield store.get()

        eng.process(worker(), name="badnode1-relay")
        eng.crashed_nodes[1] = 0.5
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        # matched via the queue name, despite the decoy process name
        assert "node 1 (crashed at t=0.5 s)" in str(ei.value)

    def test_crash_annotation_rejects_embedded_token_entirely(self):
        """When every occurrence is embedded ('badnode1' only), no
        crash annotation may appear."""
        eng = Engine()
        store = Store(eng, name="queue[badnode1]")

        def worker():
            yield store.get()

        eng.process(worker(), name="relay-badnode1")
        eng.crashed_nodes[1] = 0.5
        with pytest.raises(DeadlockError) as ei:
            eng.run(watchdog=True)
        assert "queue belongs to" not in str(ei.value)
