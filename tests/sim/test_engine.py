"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimTimeError, Store


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_advances_clock():
    eng = Engine()
    fired = []
    eng.schedule(1.5, lambda: fired.append(eng.now))
    eng.schedule(0.5, lambda: fired.append(eng.now))
    t = eng.run()
    assert fired == [0.5, 1.5]
    assert t == 1.5


def test_same_time_events_fire_in_fifo_order():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(1.0, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_schedule_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimTimeError):
        eng.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimTimeError):
        eng.schedule_at(0.5, lambda: None)


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule_at(2.0, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [2.0]


def test_run_until_stops_before_later_events():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append("a"))
    eng.schedule(3.0, lambda: fired.append("b"))
    t = eng.run(until=2.0)
    assert fired == ["a"]
    assert t == 2.0
    # The later event is still pending and runs on the next call.
    eng.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_with_no_events():
    eng = Engine()
    assert eng.run(until=5.0) == 5.0
    assert eng.now == 5.0


def test_nested_scheduling_from_callback():
    eng = Engine()
    times = []

    def outer():
        times.append(eng.now)
        eng.schedule(1.0, lambda: times.append(eng.now))

    eng.schedule(1.0, outer)
    eng.run()
    assert times == [1.0, 2.0]


def test_peek_and_empty():
    eng = Engine()
    assert eng.empty()
    assert eng.peek() == float("inf")
    eng.schedule(4.0, lambda: None)
    assert eng.peek() == 4.0
    assert not eng.empty()
    eng.run()
    assert eng.empty()


def test_max_events_bounds_execution():
    eng = Engine()
    count = []
    for _ in range(100):
        eng.schedule(1.0, lambda: count.append(1))
    eng.run(max_events=7)
    assert len(count) == 7


def test_events_executed_counter():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_executed == 5


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_schedule_nonfinite_delay_rejected(bad):
    eng = Engine()
    with pytest.raises(SimTimeError):
        eng.schedule(bad, lambda: None)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_schedule_at_nonfinite_time_rejected(bad):
    eng = Engine()
    with pytest.raises(SimTimeError):
        eng.schedule_at(bad, lambda: None)


def test_nan_delay_does_not_corrupt_heap():
    """The regression this guards: ``nan < 0`` is False, so a nan delay
    passed the old past-time check, sank into the heap and silently broke
    event ordering for everything scheduled after it."""
    eng = Engine()
    fired = []
    with pytest.raises(SimTimeError):
        eng.schedule(float("nan"), lambda: fired.append("nan"))
    eng.schedule(1.0, lambda: fired.append("ok"))
    eng.schedule(2.0, lambda: fired.append("later"))
    assert eng.run() == 2.0
    assert fired == ["ok", "later"]


def test_event_exactly_at_until_boundary_runs():
    eng = Engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append(eng.now))
    assert eng.run(until=2.0) == 2.0
    assert fired == [2.0]


def test_stop_when_halts_before_until_boundary_event():
    """``stop_when`` is checked between events: once satisfied, the run
    returns at the current time and leaves the boundary event pending."""
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append("a"))
    eng.schedule(2.0, lambda: fired.append("b"))
    t = eng.run(until=2.0, stop_when=lambda: bool(fired))
    assert fired == ["a"]
    assert t == 1.0
    assert not eng.empty()


def test_max_events_cap_on_final_event_suppresses_watchdog():
    """Hitting the event cap exactly as the heap drains is a truncated
    run, not quiescence: the watchdog must not blame blocked workers."""
    eng = Engine()
    store = Store(eng)

    def worker():
        yield store.get()

    eng.process(worker(), name="w")
    # the process-start callback is the only event; the cap lands on it
    eng.run(max_events=1, watchdog=True)  # no DeadlockError


def test_watchdog_with_perpetual_daemon_traffic_and_stop_when():
    """Heartbeat-style daemon traffic keeps the heap non-empty forever;
    a completion predicate bounds the run and the watchdog stays quiet."""
    eng = Engine()
    beats = []

    def beacon():
        while True:
            yield eng.timeout(1.0)
            beats.append(eng.now)

    eng.process(beacon(), name="beacon", daemon=True)
    t = eng.run(stop_when=lambda: len(beats) >= 5, watchdog=True)
    assert beats == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert t == 5.0
    assert not eng.empty()  # the daemon's next beat is still pending


def test_register_process_prune_is_amortized():
    """Registering P short-lived processes must stay amortized O(1):
    the dead-process prune may not rescan the registry on every
    registration once it exceeds the threshold (the old behaviour made
    building a 4096-endpoint fabric quadratic)."""
    eng = Engine()
    base = eng._prune_threshold

    def one_shot():
        yield eng.timeout(0.0)

    for _ in range(3 * base):
        eng.process(one_shot(), daemon=True)
    # all still alive: the threshold must have doubled past the
    # population instead of pruning (and rescanning) every time
    assert eng._prune_threshold >= len(eng._processes) > base
    eng.run()
    # after they die, the next registrations prune them away again
    for _ in range(eng._prune_threshold + 1):
        eng.process(one_shot(), daemon=True)
    assert len(eng._processes) <= eng._prune_threshold
