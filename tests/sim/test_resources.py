"""Unit tests for stores, priority stores, resources and signals."""

import pytest

from repro.sim import Engine, PriorityStore, Resource, Signal, Store


def run_proc(eng, gen):
    return eng.process(gen)


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)
            yield eng.timeout(0.1)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    times = []

    def consumer():
        item = yield store.get()
        times.append((eng.now, item))

    def producer():
        yield eng.timeout(5.0)
        yield store.put("x")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert times == [(5.0, "x")]


def test_store_capacity_blocks_putter():
    eng = Engine()
    store = Store(eng, capacity=1)
    trace = []

    def producer():
        yield store.put("a")
        trace.append(("put-a", eng.now))
        yield store.put("b")  # blocks until consumer takes "a"
        trace.append(("put-b", eng.now))

    def consumer():
        yield eng.timeout(3.0)
        item = yield store.get()
        trace.append(("got", item, eng.now))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert ("put-a", 0.0) in trace
    assert ("got", "a", 3.0) in trace
    assert ("put-b", 3.0) in trace


def test_store_try_put_try_get():
    eng = Engine()
    store = Store(eng, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    ok, item = store.try_get()
    assert ok and item == 1
    ok, item = store.try_get()
    assert ok and item == 2
    ok, item = store.try_get()
    assert not ok


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Engine(), capacity=0)


def test_priority_store_orders_by_priority():
    eng = Engine()
    ps = PriorityStore(eng)
    ps.try_put("low1", priority=1)
    ps.try_put("low2", priority=1)
    ps.try_put("high", priority=0)
    got = []

    def consumer():
        for _ in range(3):
            item = yield ps.get()
            got.append(item)

    eng.process(consumer())
    eng.run()
    assert got == ["high", "low1", "low2"]


def test_priority_store_fifo_within_priority():
    eng = Engine()
    ps = PriorityStore(eng)
    for i in range(5):
        ps.try_put(i, priority=0)
    got = []

    def consumer():
        for _ in range(5):
            got.append((yield ps.get()))

    eng.process(consumer())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_resource_mutual_exclusion():
    eng = Engine()
    res = Resource(eng, capacity=1)
    trace = []

    def user(name, hold):
        yield res.acquire()
        trace.append((name, "in", eng.now))
        yield eng.timeout(hold)
        trace.append((name, "out", eng.now))
        res.release()

    eng.process(user("a", 2.0))
    eng.process(user("b", 1.0))
    eng.run()
    # b cannot enter until a leaves at t=2.
    assert ("b", "in", 2.0) in trace
    assert ("b", "out", 3.0) in trace


def test_resource_capacity_two_admits_two():
    eng = Engine()
    res = Resource(eng, capacity=2)
    entered = []

    def user(name):
        yield res.acquire()
        entered.append((name, eng.now))
        yield eng.timeout(1.0)
        res.release()

    for n in "abc":
        eng.process(user(n))
    eng.run()
    at0 = [n for n, t in entered if t == 0.0]
    assert sorted(at0) == ["a", "b"]
    assert ("c", 1.0) in entered


def test_resource_release_without_acquire_raises():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Engine(), capacity=0)


def test_signal_broadcasts_to_all_waiters():
    eng = Engine()
    sig = Signal(eng)
    woken = []

    def waiter(name):
        val = yield sig.wait()
        woken.append((name, val, eng.now))

    for n in "abc":
        eng.process(waiter(n))

    def firer():
        yield eng.timeout(2.0)
        n = sig.fire("go")
        woken.append(("count", n, eng.now))

    eng.process(firer())
    eng.run()
    names = sorted(n for n, v, t in woken if v == "go")
    assert names == ["a", "b", "c"]
    assert ("count", 3, 2.0) in woken


def test_signal_fire_with_no_waiters():
    eng = Engine()
    sig = Signal(eng)
    assert sig.fire() == 0
