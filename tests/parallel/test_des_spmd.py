"""End-to-end validation: real data through the simulated hardware.

The DES-hosted halo exchange must be *bit-identical* to the functional
NumPy exchange — every byte of every halo rode VI packets through the
fat tree's routers to get there.
"""

import numpy as np
import pytest

from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.parallel.des_spmd import DESExchanger, des_global_mean
from repro.parallel.exchange import HaloExchanger, exchange_halos
from repro.parallel.tiling import Decomposition


def setup(nx=16, ny=8, px=2, py=2, olx=2, nz=None, seed=0, n_nodes=4):
    cluster = HyadesCluster(HyadesConfig(n_nodes=n_nodes))
    decomp = Decomposition(nx, ny, px, py, olx=olx)
    rng = np.random.default_rng(seed)
    g = (
        rng.standard_normal((ny, nx))
        if nz is None
        else rng.standard_normal((nz, ny, nx))
    )
    hx = HaloExchanger(decomp)
    return cluster, decomp, hx.scatter_global(g), g


class TestDESExchangeCorrectness:
    def test_bitwise_identical_to_functional_2d(self):
        cluster, decomp, tiles_des, g = setup()
        tiles_ref = HaloExchanger(decomp).scatter_global(g)
        exchange_halos(decomp, tiles_ref)
        ex = DESExchanger(cluster, decomp)
        ex.exchange(tiles_des)
        for a, b in zip(tiles_des, tiles_ref):
            np.testing.assert_array_equal(a, b)

    def test_bitwise_identical_3d(self):
        cluster, decomp, tiles_des, g = setup(nz=3, seed=5)
        tiles_ref = HaloExchanger(decomp).scatter_global(g)
        exchange_halos(decomp, tiles_ref)
        DESExchanger(cluster, decomp).exchange(tiles_des)
        for a, b in zip(tiles_des, tiles_ref):
            np.testing.assert_array_equal(a, b)

    def test_partial_width(self):
        cluster, decomp, tiles_des, g = setup(olx=3, seed=7)
        tiles_ref = HaloExchanger(decomp).scatter_global(g)
        exchange_halos(decomp, tiles_ref, width=1)
        DESExchanger(cluster, decomp).exchange(tiles_des, width=1)
        for a, b in zip(tiles_des, tiles_ref):
            np.testing.assert_array_equal(a, b)

    def test_repeated_exchanges(self):
        cluster, decomp, tiles, g = setup(seed=9)
        ex = DESExchanger(cluster, decomp)
        ex.exchange(tiles)
        snapshot = [a.copy() for a in tiles]
        ex.exchange(tiles)  # idempotent on unchanged interiors
        for a, b in zip(tiles, snapshot):
            np.testing.assert_array_equal(a, b)

    def test_strip_decomposition_with_self_wrap(self):
        cluster, decomp, tiles_des, g = setup(px=4, py=1, olx=2, seed=11)
        tiles_ref = HaloExchanger(decomp).scatter_global(g)
        exchange_halos(decomp, tiles_ref)
        DESExchanger(cluster, decomp).exchange(tiles_des)
        for a, b in zip(tiles_des, tiles_ref):
            np.testing.assert_array_equal(a, b)

    def test_single_column_periodic_self_wrap(self):
        """px = 1: the west/east 'neighbour' is the rank itself — the
        wrap goes through shared memory, not the fabric."""
        cluster, decomp, tiles_des, g = setup(px=1, py=2, olx=2, seed=17)
        tiles_ref = HaloExchanger(decomp).scatter_global(g)
        exchange_halos(decomp, tiles_ref)
        DESExchanger(cluster, decomp).exchange(tiles_des)
        for a, b in zip(tiles_des, tiles_ref):
            np.testing.assert_array_equal(a, b)

    def test_elapsed_time_positive_and_sane(self):
        cluster, decomp, tiles, _ = setup(nz=4)
        elapsed = DESExchanger(cluster, decomp).exchange(tiles)
        # several kilobyte slabs + barriers: tens to hundreds of us
        assert 20e-6 < elapsed < 5e-3

    def test_too_many_ranks_rejected(self):
        cluster = HyadesCluster(HyadesConfig(n_nodes=2))
        decomp = Decomposition(16, 8, 2, 2, olx=1)
        with pytest.raises(ValueError):
            DESExchanger(cluster, decomp)


class TestDESJacobiSweep:
    def test_des_stencil_iteration_matches_serial(self):
        """A Jacobi smoothing sweep with DES halo exchange equals the
        same sweep on the undecomposed field — real compute on really
        transported halos."""
        cluster, decomp, tiles, g = setup(nx=16, ny=8, px=2, py=2, olx=1, seed=3)
        ex = DESExchanger(cluster, decomp)
        # serial reference with periodic x, clamped y
        ref = g.copy()
        for _ in range(3):
            p = np.zeros((ref.shape[0] + 2, ref.shape[1] + 2))
            p[1:-1, 1:-1] = ref
            p[1:-1, 0] = ref[:, -1]
            p[1:-1, -1] = ref[:, 0]
            p[0, 1:-1] = ref[0]
            p[-1, 1:-1] = ref[-1]
            ref = 0.25 * (p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2] + p[1:-1, 2:])
        # tiled with DES exchange; walls handled by mirroring into halos
        o = decomp.olx
        for _ in range(3):
            ex.exchange(tiles)
            for r, t in enumerate(decomp.tiles):
                a = tiles[r]
                if decomp.neighbor(r, "south") is None:
                    a[o - 1, :] = a[o, :]
                if decomp.neighbor(r, "north") is None:
                    a[o + t.ny, :] = a[o + t.ny - 1, :]
                new = 0.25 * (
                    a[o - 1 : o + t.ny - 1, o : o + t.nx]
                    + a[o + 1 : o + t.ny + 1, o : o + t.nx]
                    + a[o : o + t.ny, o - 1 : o + t.nx - 1]
                    + a[o : o + t.ny, o + 1 : o + t.nx + 1]
                )
                a[o : o + t.ny, o : o + t.nx] = new
        got = HaloExchanger(decomp).gather_global(tiles)
        np.testing.assert_allclose(got, ref, atol=1e-14)


class TestDESGlobalMean:
    def test_matches_numpy_mean(self):
        cluster, decomp, tiles, g = setup(seed=13)
        got = des_global_mean(cluster, decomp, tiles)
        assert got == pytest.approx(float(g.mean()), rel=1e-12)
