"""Tests for the tiled domain decomposition (Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.tiling import Decomposition


class TestConstruction:
    def test_basic_4x4(self):
        d = Decomposition(128, 64, 4, 4, olx=3)
        assert d.n_ranks == 16
        t = d.tile(0)
        assert (t.nx, t.ny) == (32, 16)
        assert t.shape2d == (22, 38)
        assert t.shape3d(10) == (10, 22, 38)

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(100, 64, 3, 4)

    def test_halo_larger_than_tile_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(8, 8, 4, 4, olx=3)

    def test_negative_halo_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(8, 8, 2, 2, olx=-1)

    def test_strips_factory(self):
        d = Decomposition.strips(128, 64, 16, olx=3)
        assert (d.px, d.py) == (16, 1)
        assert d.tile(0).nx == 8 and d.tile(0).ny == 64

    def test_blocks_factory(self):
        d = Decomposition.blocks(128, 64, 4, 4)
        assert (d.px, d.py) == (4, 4)

    def test_tile_origins_cover_domain(self):
        d = Decomposition(128, 64, 4, 4)
        cells = set()
        for t in d:
            for y in range(t.y0, t.y0 + t.ny):
                for x in range(t.x0, t.x0 + t.nx):
                    assert (x, y) not in cells
                    cells.add((x, y))
        assert len(cells) == 128 * 64


class TestNeighbors:
    def test_periodic_x_wraps(self):
        d = Decomposition(128, 64, 4, 4)
        assert d.neighbor(0, "west") == 3
        assert d.neighbor(3, "east") == 0

    def test_walls_in_y(self):
        d = Decomposition(128, 64, 4, 4)
        assert d.neighbor(0, "south") is None
        assert d.neighbor(15, "north") is None

    def test_interior_neighbors(self):
        d = Decomposition(128, 64, 4, 4)
        assert d.neighbor(5, "west") == 4
        assert d.neighbor(5, "east") == 6
        assert d.neighbor(5, "south") == 1
        assert d.neighbor(5, "north") == 9

    def test_single_tile_periodic_self(self):
        d = Decomposition(32, 16, 1, 1)
        assert d.neighbor(0, "west") == 0
        assert d.neighbor(0, "north") is None

    def test_unknown_direction_raises(self):
        d = Decomposition(32, 16, 1, 1)
        with pytest.raises(ValueError):
            d.neighbor(0, "up")

    def test_fully_periodic_option(self):
        d = Decomposition(32, 32, 2, 2, periodic_y=True)
        assert d.neighbor(0, "south") == 2


class TestEdgeBytes:
    def test_reference_atmosphere_volumes(self):
        """The Fig. 11 halo volumes: 4x4 tiles of 32x16, halo 3, 10 levels."""
        d = Decomposition(128, 64, 4, 4, olx=3)
        edges = d.edge_bytes(nz=10, rank=5)  # interior tile
        # west/east: 3*16*10 cells, south/north: 3*32*10 cells (corner-free)
        assert edges[0] == edges[1] == 3 * 16 * 10 * 8
        assert edges[2] == edges[3] == 3 * 32 * 10 * 8
        # total halo volume per field = 23040 B, the calibration target
        assert sum(edges) == 23040

    def test_wall_tiles_send_nothing_south(self):
        d = Decomposition(128, 64, 4, 4, olx=3)
        edges = d.edge_bytes(nz=10, rank=0)
        assert edges[2] == 0  # south wall
        assert edges[3] > 0

    def test_self_wrap_is_free(self):
        d = Decomposition(32, 16, 1, 1, olx=1)
        assert d.edge_bytes() == [0, 0, 0, 0]

    def test_width_override(self):
        d = Decomposition(128, 64, 4, 4, olx=3)
        narrow = d.edge_bytes(width=1, rank=5)
        full = d.edge_bytes(rank=5)
        assert narrow[0] < full[0]
        assert narrow[0] == 1 * 16 * 1 * 8


@given(
    px=st.sampled_from([1, 2, 4]),
    py=st.sampled_from([1, 2, 4]),
    olx=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40)
def test_property_neighbor_relation_is_symmetric(px, py, olx):
    d = Decomposition(32, 32, px, py, olx=olx)
    opposite = {"west": "east", "east": "west", "north": "south", "south": "north"}
    for r in range(d.n_ranks):
        for dirn, opp in opposite.items():
            nbr = d.neighbor(r, dirn)
            if nbr is not None and nbr != r:
                assert d.neighbor(nbr, opp) == r
