"""Tests for the runtime's optional event timeline."""

import pytest

from repro.gcm.timestepper import Model, ModelConfig
from repro.gcm.grid import GridParams
from repro.parallel.runtime import LockstepRuntime
from repro.parallel.tiling import Decomposition


def make_runtime(record=True):
    d = Decomposition(32, 16, 2, 2, olx=1)
    return LockstepRuntime(d, record_timeline=record)


class TestTimeline:
    def test_disabled_by_default(self):
        rt = make_runtime(record=False)
        rt.charge_compute(1e6, phase="ps")
        assert rt.timeline == []

    def test_events_recorded_in_order(self):
        rt = make_runtime()
        rt.charge_compute(1e6, phase="ps")
        fields = [t.alloc2d() for t in rt.decomp.tiles]
        rt.exchange(fields)
        rt.global_sum([1.0] * 4)
        kinds = [k for k, _, _ in rt.timeline]
        assert kinds == ["compute:ps", "exchange:1f", "gsum"]

    def test_events_are_contiguous_and_monotone(self):
        rt = make_runtime()
        rt.charge_compute(1e6, phase="ps")
        rt.global_sum([0.0] * 4)
        rt.charge_compute(2e6, phase="ds")
        for kind, t0, t1 in rt.timeline:
            assert t0 <= t1
        ends = [t1 for _, _, t1 in rt.timeline]
        assert ends == sorted(ends)
        # the final event's end is the runtime's elapsed clock
        assert rt.timeline[-1][2] == pytest.approx(rt.elapsed)

    def test_gcm_step_produces_full_schedule(self):
        cfg = ModelConfig(grid=GridParams(nx=32, ny=16, nz=4), px=2, py=2)
        d = Decomposition(32, 16, 2, 2, olx=cfg.olx)
        rt = LockstepRuntime(d, cpus_per_node=2, record_timeline=True)
        m = Model(cfg, runtime=rt)
        m.step()
        kinds = {k.split(":")[0] for k, _, _ in rt.timeline}
        assert "exchange" in kinds and "compute" in kinds
        # the PS exchange of 5 fields appears by name
        assert any(k == "exchange:5f" for k, _, _ in rt.timeline)
