"""Halo exchange over a faulty fabric: reliable mode recovers
bit-exactly; raw mode fails loudly via the deadlock watchdog."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFaultModel
from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.niu.reliable import DeliveryError
from repro.parallel.des_spmd import DESExchanger
from repro.parallel.exchange import HaloExchanger, exchange_halos
from repro.parallel.tiling import Decomposition
from repro.sim import DeadlockError


def setup(plan=None, nx=16, ny=8, px=2, py=2, olx=2, nz=None, seed=0):
    cluster = HyadesCluster(HyadesConfig(n_nodes=px * py))
    inj = FaultInjector(cluster.fabric, plan) if plan is not None else None
    decomp = Decomposition(nx, ny, px, py, olx=olx)
    rng = np.random.default_rng(seed)
    g = (
        rng.standard_normal((ny, nx))
        if nz is None
        else rng.standard_normal((nz, ny, nx))
    )
    tiles = HaloExchanger(decomp).scatter_global(g)
    ref = HaloExchanger(decomp).scatter_global(g)
    exchange_halos(decomp, ref)
    return cluster, decomp, tiles, ref, inj


class TestReliableExchange:
    def test_clean_fabric_bit_exact(self):
        cluster, decomp, tiles, ref, _ = setup()
        DESExchanger(cluster, decomp, reliable=True).exchange(tiles)
        for a, b in zip(tiles, ref):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("drop", [0.001, 0.01, 0.1])
    def test_seeded_drops_bit_exact(self, drop):
        plan = FaultPlan(seed=23, drop_prob=drop)
        cluster, decomp, tiles, ref, inj = setup(plan=plan)
        ex = DESExchanger(cluster, decomp, reliable=True)
        ex.exchange(tiles)
        for a, b in zip(tiles, ref):
            np.testing.assert_array_equal(a, b)
        if drop >= 0.1:
            assert inj.injected_drops > 0
            assert ex.reliability_stats()["retransmissions"] > 0

    def test_drops_and_corruption_3d(self):
        plan = FaultPlan(seed=29, drop_prob=0.02, corrupt_prob=0.01)
        cluster, decomp, tiles, ref, _ = setup(plan=plan, nz=3, seed=4)
        DESExchanger(cluster, decomp, reliable=True).exchange(tiles)
        for a, b in zip(tiles, ref):
            np.testing.assert_array_equal(a, b)

    def test_recovery_costs_simulated_time(self):
        c0, d0, t0, _, _ = setup()
        clean = DESExchanger(c0, d0, reliable=True).exchange(t0)
        c1, d1, t1, _, _ = setup(plan=FaultPlan(seed=23, drop_prob=0.05))
        faulty = DESExchanger(c1, d1, reliable=True).exchange(t1)
        assert faulty > clean

    def test_repeated_exchanges_under_sustained_loss(self):
        plan = FaultPlan(seed=31, drop_prob=0.02)
        cluster, decomp, tiles, ref, _ = setup(plan=plan)
        ex = DESExchanger(cluster, decomp, reliable=True)
        for _ in range(3):
            ex.exchange(tiles)
        for a, b in zip(tiles, ref):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("seed", [3, 11, 17, 41, 59])
    def test_random_fault_plans_bit_exact(self, seed):
        """Seed-derived random drop/corrupt rates: every plan must still
        deliver bit-exact halos across repeated exchanges."""
        rng = np.random.default_rng(seed)
        plan = FaultPlan(
            seed=seed,
            drop_prob=float(rng.uniform(0.005, 0.08)),
            corrupt_prob=float(rng.uniform(0.0, 0.02)),
        )
        cluster, decomp, tiles, ref, _ = setup(plan=plan, seed=seed)
        ex = DESExchanger(cluster, decomp, reliable=True)
        for _ in range(2):
            ex.exchange(tiles)
        for a, b in zip(tiles, ref):
            np.testing.assert_array_equal(a, b)

    def test_retry_exhaustion_surfaces_delivery_error(self):
        plan = FaultPlan(
            seed=0, link_overrides={"niu0^": LinkFaultModel(drop_prob=1.0)}
        )
        cluster, decomp, tiles, _, _ = setup(plan=plan)
        ex = DESExchanger(
            cluster,
            decomp,
            reliable=True,
            reliable_params=dict(base_rto=20e-6, max_retries=3),
        )
        with pytest.raises(DeliveryError):
            ex.exchange(tiles)


class TestRawModeFailsLoudly:
    def test_drops_raise_deadlock_naming_ranks(self):
        plan = FaultPlan(seed=23, drop_prob=0.1)
        cluster, decomp, tiles, _, _ = setup(plan=plan)
        with pytest.raises(DeadlockError, match=r"rank\d") as ei:
            DESExchanger(cluster, decomp).exchange(tiles)
        assert "blocked process(es)" in str(ei.value)

    def test_two_exchangers_share_cluster_without_crosstalk(self):
        """Two exchangers (e.g. the two isomorphs of a coupled run) on
        one cluster must not steal each other's reliable messages."""
        plan = FaultPlan(seed=37, drop_prob=0.01)
        cluster, decomp, tiles_a, ref_a, _ = setup(plan=plan, seed=1)
        _, _, tiles_b, ref_b, _ = setup(seed=2)
        ex_a = DESExchanger(cluster, decomp, reliable=True)
        ex_b = DESExchanger(cluster, decomp, reliable=True)
        ex_a.exchange(tiles_a)
        ex_b.exchange(tiles_b)
        ex_a.exchange(tiles_a)
        for a, b in zip(tiles_a, ref_a):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(tiles_b, ref_b):
            np.testing.assert_array_equal(a, b)
