"""Tests for the exchange primitive: halo consistency across tilings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.exchange import HaloExchanger, exchange_halos
from repro.parallel.tiling import Decomposition


def global_field(nx, ny, nz=None, seed=0):
    rng = np.random.default_rng(seed)
    shape = (ny, nx) if nz is None else (nz, ny, nx)
    return rng.standard_normal(shape)


def tiles_from_global(decomp, g):
    return HaloExchanger(decomp).scatter_global(g)


def reference_halo(decomp, g, rank, width):
    """Build the expected tile array straight from the global field."""
    t = decomp.tile(rank)
    o = decomp.olx
    shape = (
        g.shape[:-2] + (t.ny + 2 * o, t.nx + 2 * o)
        if g.ndim == 3
        else (t.ny + 2 * o, t.nx + 2 * o)
    )
    out = np.zeros(shape, dtype=g.dtype)
    for jj in range(-width, t.ny + width):
        gy = t.y0 + jj
        if gy < 0 or gy >= decomp.ny:
            continue  # wall: halo stays zero
        for ii in range(-width, t.nx + width):
            gx = (t.x0 + ii) % decomp.nx if decomp.periodic_x else t.x0 + ii
            if gx < 0 or gx >= decomp.nx:
                continue
            out[..., o + jj, o + ii] = g[..., gy, gx]
    # zero out anything beyond the requested exchange width
    return out


@pytest.mark.parametrize("px,py,olx", [(4, 4, 3), (2, 4, 1), (8, 1, 3), (1, 1, 2), (4, 2, 2)])
def test_halos_match_global_field_2d(px, py, olx):
    d = Decomposition(32, 16, px, py, olx=olx)
    g = global_field(32, 16, seed=1)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles)
    for r in range(d.n_ranks):
        expected = reference_halo(d, g, r, olx)
        np.testing.assert_allclose(tiles[r], expected)


def test_halos_match_global_field_3d():
    d = Decomposition(16, 16, 2, 2, olx=2)
    g = global_field(16, 16, nz=5, seed=2)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles)
    for r in range(d.n_ranks):
        np.testing.assert_allclose(tiles[r], reference_halo(d, g, r, 2))


def test_corner_cells_filled_with_diagonal_neighbor_data():
    d = Decomposition(8, 8, 2, 2, olx=1)
    g = np.arange(64, dtype=float).reshape(8, 8)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles)
    # Tile 0 (x0=0,y0=0): its north-east halo corner is global (4, 4),
    # owned by the diagonal tile 3.
    o = 1
    t = d.tile(0)
    assert tiles[0][o + t.ny, o + t.nx] == g[4, 4]


def test_partial_width_exchange():
    d = Decomposition(16, 16, 2, 2, olx=3)
    g = global_field(16, 16, seed=3)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles, width=1)
    for r in range(d.n_ranks):
        expected = reference_halo(d, g, r, 1)
        np.testing.assert_allclose(tiles[r], expected)


def test_width_exceeding_halo_rejected():
    d = Decomposition(16, 16, 2, 2, olx=1)
    tiles = [t.alloc2d() for t in d.tiles]
    with pytest.raises(ValueError):
        exchange_halos(d, tiles, width=2)


def test_negative_width_rejected():
    """A negative width would flip the halo slices into interior ranges
    and silently overwrite interior cells; it must raise instead."""
    d = Decomposition(16, 16, 2, 2, olx=1)
    tiles = [t.alloc2d() for t in d.tiles]
    with pytest.raises(ValueError, match="width must be >= 0"):
        exchange_halos(d, tiles, width=-1)


def test_wrong_tile_count_rejected():
    d = Decomposition(16, 16, 2, 2)
    with pytest.raises(ValueError):
        exchange_halos(d, [d.tile(0).alloc2d()])


def test_zero_width_is_noop():
    d = Decomposition(16, 16, 2, 2, olx=1)
    tiles = [t.alloc2d() for t in d.tiles]
    tiles[0][:] = 7.0
    before = [a.copy() for a in tiles]
    exchange_halos(d, tiles, width=0)
    for a, b in zip(tiles, before):
        np.testing.assert_array_equal(a, b)


def test_single_tile_periodic_wrap():
    d = Decomposition(8, 4, 1, 1, olx=2)
    g = np.arange(32, dtype=float).reshape(4, 8)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles)
    o = 2
    # west halo holds the two easternmost global columns
    np.testing.assert_allclose(tiles[0][o : o + 4, 0:2], g[:, 6:8])
    np.testing.assert_allclose(tiles[0][o : o + 4, o + 8 : o + 10], g[:, 0:2])


def test_gather_scatter_roundtrip():
    d = Decomposition(32, 16, 4, 2, olx=2)
    g = global_field(32, 16, nz=3, seed=4)
    hx = HaloExchanger(d)
    tiles = hx.scatter_global(g)
    np.testing.assert_allclose(hx.gather_global(tiles), g)


def test_exchange_idempotent():
    d = Decomposition(16, 16, 2, 2, olx=1)
    g = global_field(16, 16, seed=5)
    tiles = tiles_from_global(d, g)
    exchange_halos(d, tiles)
    snapshot = [a.copy() for a in tiles]
    exchange_halos(d, tiles)
    for a, b in zip(tiles, snapshot):
        np.testing.assert_array_equal(a, b)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    px=st.sampled_from([1, 2, 4]),
    py=st.sampled_from([1, 2]),
)
@settings(max_examples=25, deadline=None)
def test_property_interiors_never_modified(seed, px, py):
    d = Decomposition(16, 8, px, py, olx=1)
    g = global_field(16, 8, seed=seed)
    tiles = tiles_from_global(d, g)
    interiors = [t_arr[d.tile(r).interior].copy() for r, t_arr in enumerate(tiles)]
    exchange_halos(d, tiles)
    for r, t_arr in enumerate(tiles):
        np.testing.assert_array_equal(t_arr[d.tile(r).interior], interiors[r])


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_decomposition_invariance_of_stencil(seed):
    """A 3x3 stencil applied per-tile after exchange equals the stencil
    applied to the global field — the core overcomputation guarantee."""
    nx, ny = 16, 8
    g = global_field(nx, ny, seed=seed)

    def stencil(a):
        # 5-point average with periodic x, zero-padded y (walls)
        p = np.zeros((a.shape[0] + 2, a.shape[1] + 2))
        p[1:-1, 1:-1] = a
        p[1:-1, 0] = a[:, -1]
        p[1:-1, -1] = a[:, 0]
        return p[1:-1, 1:-1] + p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2] + p[1:-1, 2:]

    expected = stencil(g)
    d = Decomposition(nx, ny, 4, 2, olx=1)
    hx = HaloExchanger(d)
    tiles = hx.scatter_global(g)
    exchange_halos(d, tiles)
    out_tiles = []
    for r, a in enumerate(tiles):
        s = a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:] + a[1:-1, 1:-1]
        # s has shape (ny, nx) of the tile... extract interior region of sum
        out = np.zeros_like(a)
        out[1:-1, 1:-1] = s
        out_tiles.append(out)
    got = hx.gather_global(out_tiles)
    np.testing.assert_allclose(got, expected)
