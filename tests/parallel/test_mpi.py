"""Tests for the general-purpose MPI-like layer (Section 6 context)."""

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.parallel.des_collectives import des_global_sum
from repro.parallel.mpi import MPI_EAGER_THRESHOLD, MPIComm


def run_ranks(n, body):
    """Spawn one process per rank running body(comm, rank); return results."""
    cluster = HyadesCluster()
    comm = MPIComm(cluster, n_ranks=n)
    results = {}

    def rank_proc(r):
        out = yield from body(comm, r)
        results[r] = out

    for r in range(n):
        cluster.engine.process(rank_proc(r))
    cluster.engine.run()
    return results, cluster.engine.now


class TestPointToPoint:
    def test_send_recv_payload(self):
        def body(comm, r):
            if r == 0:
                yield from comm.send(0, 1, 100, tag=7, data={"x": 42})
                return None
            msg = yield from comm.recv(1, source=0, tag=7)
            return msg

        res, _ = run_ranks(2, body)
        assert res[1].data == {"x": 42}
        assert res[1].nbytes == 100
        assert res[1].source == 0

    def test_tag_matching_out_of_order(self):
        """A receive for tag B must skip an earlier tag-A message."""

        def body(comm, r):
            if r == 0:
                yield from comm.send(0, 1, 8, tag=1, data="first")
                yield from comm.send(0, 1, 8, tag=2, data="second")
                return None
            m2 = yield from comm.recv(1, source=0, tag=2)
            m1 = yield from comm.recv(1, source=0, tag=1)
            return (m1.data, m2.data)

        res, _ = run_ranks(2, body)
        assert res[1] == ("first", "second")

    def test_wildcard_receive(self):
        def body(comm, r):
            if r in (0, 1):
                yield from comm.send(r, 2, 8, tag=5, data=r)
                return None
            if r != 2:
                return None
            got = []
            for _ in range(2):
                msg = yield from comm.recv(2, tag=5)
                got.append(msg.source)
            return sorted(got)

        res, _ = run_ranks(4, body)
        assert res[2] == [0, 1]

    def test_rendezvous_path_for_large_messages(self):
        nbytes = MPI_EAGER_THRESHOLD * 8

        def body(comm, r):
            if r == 0:
                yield from comm.send(0, 1, nbytes, tag=3, data=b"big")
                return None
            msg = yield from comm.recv(1, source=0, tag=3)
            return msg

        res, _ = run_ranks(2, body)
        assert res[1].nbytes == nbytes

    def test_bad_destination_rejected(self):
        def body(comm, r):
            try:
                yield from comm.send(0, 9, 8)
            except ValueError:
                return "caught"
            return "missed"

        res, _ = run_ranks(2, body)
        assert res[0] == "caught"

    def test_sendrecv_ring(self):
        def body(comm, r):
            n = comm.n_ranks
            msg = yield from comm.sendrecv(
                r, dest=(r + 1) % n, source=(r - 1) % n, nbytes=8, tag=4, data=r
            )
            return msg.data

        res, _ = run_ranks(4, body)
        assert res == {0: 3, 1: 0, 2: 1, 3: 2}


class TestCollectives:
    def test_allreduce_sum_correct(self):
        def body(comm, r):
            return (yield from comm.allreduce_sum(r, float(r + 1)))

        res, _ = run_ranks(8, body)
        assert all(v == pytest.approx(36.0) for v in res.values())

    def test_allreduce_bitwise_identical(self):
        def body(comm, r):
            return (yield from comm.allreduce_sum(r, 0.1 * (r + 1)))

        res, _ = run_ranks(8, body)
        assert len({v.hex() for v in res.values()}) == 1

    def test_allreduce_requires_power_of_two(self):
        def body(comm, r):
            try:
                yield from comm.allreduce_sum(r, 1.0)
            except ValueError:
                return "caught"

        res, _ = run_ranks(3, body)
        assert res[0] == "caught"

    def test_barrier_completes(self):
        def body(comm, r):
            yield from comm.barrier(r)
            return comm.engine.now

        res, t = run_ranks(8, body)
        assert len(res) == 8 and t > 0

    @pytest.mark.parametrize("root", [0, 3])
    def test_bcast_delivers_to_all(self, root):
        def body(comm, r):
            data = "payload" if r == root else None
            got = yield from comm.bcast(r, root=root, nbytes=64, data=data)
            return got

        res, _ = run_ranks(8, body)
        assert all(v == "payload" for v in res.values())


class TestGeneralityTax:
    """Section 6's argument, quantified: the tailored primitives beat
    the general-purpose layer on the same hardware."""

    def test_mpi_allreduce_slower_than_custom_gsum(self):
        def body(comm, r):
            t0 = comm.engine.now
            yield from comm.allreduce_sum(r, float(r))
            return comm.engine.now - t0

        res, _ = run_ranks(16, body)
        t_mpi = max(res.values())
        cluster = HyadesCluster()
        _, t_custom = des_global_sum(cluster, [float(i) for i in range(16)])
        assert t_mpi > 1.5 * t_custom

    def test_but_mpi_still_beats_ethernet_class_latency(self):
        """MPI over Arctic remains far faster than MPI over Ethernet —
        the interconnect, not only the API, sets the floor."""

        def body(comm, r):
            t0 = comm.engine.now
            yield from comm.allreduce_sum(r, 1.0)
            return comm.engine.now - t0

        res, _ = run_ranks(16, body)
        t_mpi_arctic = max(res.values())
        assert t_mpi_arctic < 942e-6 / 3  # far under the FE gsum
