"""Straggler mitigation: work-based suspicion, checkpoint rebalancing."""

import numpy as np
import pytest

from repro.faults import DegradationSchedule, FaultPlan, SlowdownEvent
from repro.parallel import Decomposition, LockstepRuntime, StragglerMitigator
from repro.parallel.runtime import StragglerConfig

FLOPS = 16 * 16 * 200.0
STAGES = 12
CHECKPOINT = 4


def make_runtime(n_ranks=8, tiles_per_node=2, factor=None, victim=1):
    px = 2 if n_ranks % 2 == 0 else 1
    decomp = Decomposition(16 * px, 16 * (n_ranks // px), px, n_ranks // px)
    runtime = LockstepRuntime(
        decomp, backend="analytic", n_nodes=n_ranks // tiles_per_node
    )
    if factor:
        plan = FaultPlan(
            slowdowns=(
                SlowdownEvent(node=victim, start=0.0, duration=1e9, factor=factor),
            )
        )
        runtime.set_degradation(DegradationSchedule(plan))
    return runtime


def drive(runtime, mitigator=None, stages=STAGES):
    for stage in range(stages):
        runtime.charge_compute(FLOPS, "ps")
        runtime.global_sum([0.0] * runtime.n_ranks)
        if mitigator is not None:
            mitigator.observe()
            if stage % CHECKPOINT == CHECKPOINT - 1:
                mitigator.rebalance()
    return runtime.elapsed


class TestOverDecomposition:
    def test_n_nodes_must_divide_ranks(self):
        decomp = Decomposition(32, 32, 2, 4)
        with pytest.raises(ValueError, match="divide"):
            LockstepRuntime(decomp, backend="analytic", n_nodes=3)

    def test_nodes_cannot_outnumber_tiles_per_cpu(self):
        decomp = Decomposition(32, 32, 2, 4)
        with pytest.raises(ValueError):
            LockstepRuntime(
                decomp, backend="analytic", cpus_per_node=2, n_nodes=8
            )

    def test_tiles_time_slice_their_node(self):
        # 2 tiles per 1-CPU node run ~2x slower per stage than 1 tile
        # per node: same work, half the CPUs.
        flat = make_runtime(n_ranks=8, tiles_per_node=1)
        packed = make_runtime(n_ranks=8, tiles_per_node=2)
        t_flat = drive(flat)
        t_packed = drive(packed)
        assert t_packed > t_flat * 1.5

    def test_ownership_starts_contiguous(self):
        runtime = make_runtime(n_ranks=8, tiles_per_node=2)
        assert runtime.n_nodes == 4
        assert list(runtime.rank_owner) == [0, 0, 1, 1, 2, 2, 3, 3]


class TestSuspicion:
    def test_healthy_uniform_layout_never_suspects(self):
        runtime = make_runtime(n_ranks=8)
        mit = StragglerMitigator(runtime)
        drive(runtime, mit)
        assert mit.suspects() == []
        assert mit.moves == []

    def test_sustained_slowdown_is_suspected(self):
        runtime = make_runtime(n_ranks=8, factor=4.0)
        mit = StragglerMitigator(runtime)
        drive(runtime, mit)
        assert 1 in [n for (_, n, _) in mit.moves] or mit.suspected(1)
        assert mit.slowdown(1) > mit.slowdown(0)

    def test_observation_uses_charged_work_not_clocks(self):
        # After a collective every rank's *clock* is equal; only charged
        # work betrays the straggler.  If observe() read clocks, the
        # victim would never clear the suspicion threshold.
        runtime = make_runtime(n_ranks=8, factor=8.0)
        mit = StragglerMitigator(runtime)
        runtime.charge_compute(FLOPS, "ps")
        runtime.global_sum([0.0] * runtime.n_ranks)
        assert np.allclose(runtime.clocks, runtime.clocks[0])  # BSP equalized
        mit.observe()
        runtime.charge_compute(FLOPS, "ps")
        runtime.global_sum([0.0] * runtime.n_ranks)
        mit.observe()
        assert mit.slowdown(1) > 2.0


class TestRebalance:
    def test_moves_shed_the_victims_tiles(self):
        runtime = make_runtime(n_ranks=8, factor=4.0)
        mit = StragglerMitigator(runtime)
        drive(runtime, mit)
        assert mit.moves, "sustained 4x slowdown must trigger a move"
        assert all(src == 1 for (_, src, _) in mit.moves)
        # The straggler keeps at least min_tiles (it must keep working).
        assert runtime.tiles_owned(1) >= mit.config.min_tiles

    def test_mitigation_recovers_throughput(self):
        t_clean = drive(make_runtime(n_ranks=8))
        t_none = drive(make_runtime(n_ranks=8, factor=4.0))
        runtime = make_runtime(n_ranks=8, factor=4.0)
        t_mit = drive(runtime, StragglerMitigator(runtime))
        assert t_mit < t_none
        assert (t_none - t_mit) / (t_none - t_clean) > 0.2

    def test_mitigators_own_imbalance_is_not_straggling(self):
        # After shedding a tile onto a healthy node, that node runs 2
        # tiles while peers run fewer-per-CPU; the median-relative
        # discount must keep it from being suspected in turn.
        runtime = make_runtime(n_ranks=8, factor=8.0)
        mit = StragglerMitigator(runtime)
        drive(runtime, mit, stages=2 * STAGES)
        receivers = {dst for (_, _, dst) in mit.moves}
        assert receivers
        assert not any(mit.suspected(n) for n in receivers)

    def test_rebalance_without_suspects_is_a_noop(self):
        runtime = make_runtime(n_ranks=8)
        mit = StragglerMitigator(runtime)
        assert mit.rebalance() == []

    def test_decisions_are_deterministic(self):
        def run():
            runtime = make_runtime(n_ranks=16, factor=4.0)
            mit = StragglerMitigator(runtime)
            elapsed = drive(runtime, mit)
            return elapsed, mit.moves

        assert run() == run()


class TestConfigValidation:
    def test_suspect_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="suspect_factor"):
            StragglerConfig(suspect_factor=1.0)

    def test_ewma_alpha_range(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            StragglerConfig(ewma_alpha=0.0)
