"""Tests for the butterfly global sum (Fig. 8) and its DES realization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import HyadesCluster
from repro.parallel.des_collectives import des_barrier, des_global_sum
from repro.parallel.globalsum import (
    GlobalSummer,
    butterfly_global_sum,
    butterfly_rounds,
    canonical_fold_reduce,
    tree_reduce_broadcast,
)


class TestButterflyAlgorithm:
    def test_eight_way_matches_fig8_partials(self):
        """Reproduce the partial sums annotated in the paper's Fig. 8."""
        d = [float(i) for i in range(8)]
        results, trace = butterfly_global_sum(d, record_rounds=True)
        # Round 0: node 0 and 1 hold d0+d1; node 6 and 7 hold d6+d7.
        assert trace[0][0] == trace[0][1] == d[0] + d[1]
        assert trace[0][6] == trace[0][7] == d[6] + d[7]
        # Round 1: nodes 0-3 hold d0+d1+d2+d3.
        for r in range(4):
            assert trace[1][r] == d[0] + d[1] + d[2] + d[3]
        for r in range(4, 8):
            assert trace[1][r] == d[4] + d[5] + d[6] + d[7]
        # Round 2: everyone holds the total.
        assert all(v == sum(d) for v in trace[2])
        assert results == [sum(d)] * 8

    def test_round_partials_group_by_low_bits(self):
        """After round i, node r holds the sum of the group whose ids
        differ from r only in the lowest i+1 bits (Section 4.2)."""
        n = 16
        vals = [float(3 * i + 1) for i in range(n)]
        _, trace = butterfly_global_sum(vals, record_rounds=True)
        for i, partials in enumerate(trace):
            mask = ~((1 << (i + 1)) - 1)
            for r in range(n):
                group = [vals[s] for s in range(n) if (s & mask) == (r & mask)]
                assert partials[r] == pytest.approx(math.fsum(group))

    def test_results_bitwise_identical_across_ranks(self):
        rng = np.random.default_rng(7)
        vals = rng.standard_normal(32).tolist()
        results, _ = butterfly_global_sum(vals)
        assert len({v.hex() for v in results}) == 1

    def test_non_power_of_two_folds(self):
        """Extras fold onto the base group (pre/post rounds), and every
        rank still finishes with the canonical bitwise-identical sum."""
        rng = np.random.default_rng(11)
        for n in (3, 5, 6, 7, 12, 13):
            vals = rng.standard_normal(n).tolist()
            results, _ = butterfly_global_sum(vals)
            assert len({v.hex() for v in results}) == 1
            assert results[0] == pytest.approx(math.fsum(vals), rel=1e-12)
            assert results[0] == canonical_fold_reduce(vals)

    def test_non_power_of_two_rounds_pattern(self):
        rounds = butterfly_rounds(5)
        # fold-in, 2 butterfly rounds over the base 4, fold-out
        assert rounds[0] == [(4, 0)]
        assert rounds[-1] == [(0, 4)]
        assert len(rounds) == 4

    def test_single_value(self):
        results, trace = butterfly_global_sum([5.0])
        assert results == [5.0] and trace == []

    def test_rounds_pattern(self):
        rounds = butterfly_rounds(8)
        assert len(rounds) == 3
        assert (0, 1) in rounds[0]
        assert (0, 2) in rounds[1]
        assert (0, 4) in rounds[2]

    def test_message_count_n_log_n(self):
        # Each round every node sends one message: N log2 N total.
        n = 16
        total = sum(len(r) for r in butterfly_rounds(n))
        assert total == n * int(math.log2(n))


class TestTreeBaseline:
    def test_tree_matches_butterfly_value(self):
        vals = [float(i) * 0.5 for i in range(16)]
        bf, _ = butterfly_global_sum(vals)
        tr, rounds = tree_reduce_broadcast(vals)
        assert tr[0] == pytest.approx(bf[0])
        assert rounds == 8  # 2 log2 16: twice the butterfly's latency

    def test_tree_bitwise_matches_butterfly_non_pow2(self):
        rng = np.random.default_rng(3)
        for n in (5, 11, 16):
            vals = rng.standard_normal(n).tolist()
            bf, _ = butterfly_global_sum(vals)
            tr, _ = tree_reduce_broadcast(vals)
            assert tr[0].hex() == bf[0].hex()


class TestGlobalSummer:
    def test_flat_sum(self):
        gs = GlobalSummer(8)
        assert gs([1.0] * 8) == pytest.approx(8.0)

    def test_smp_hierarchical_sum(self):
        gs = GlobalSummer(16, cpus_per_node=2)
        vals = [float(i) for i in range(16)]
        assert gs(vals) == pytest.approx(sum(vals))
        assert gs.n_nodes == 8
        assert gs.message_count() == 8 * 3

    def test_wrong_length_rejected(self):
        gs = GlobalSummer(8)
        with pytest.raises(ValueError):
            gs([1.0] * 7)

    def test_indivisible_ranks_rejected(self):
        with pytest.raises(ValueError):
            GlobalSummer(6, cpus_per_node=4)

    def test_non_power_of_two_nodes_allowed(self):
        gs = GlobalSummer(6)
        vals = [float(i) for i in range(6)]
        assert gs(vals) == pytest.approx(sum(vals))
        # fold messages: m log2 m + 2 extras = 4*2 + 2*2
        assert gs.message_count() == 12

    def test_auto_algorithm_exposes_plan(self):
        gs = GlobalSummer(16, algorithm="auto")
        assert gs.plan is not None
        assert gs.algorithm == gs.plan.algorithm
        # doubleword sums at 16 nodes: the paper's butterfly must win
        assert gs.algorithm == "butterfly"
        assert gs([1.0] * 16) == pytest.approx(16.0)


class TestDESGlobalSum:
    paper = {2: 4.0e-6, 4: 8.3e-6, 8: 12.8e-6, 16: 18.2e-6}

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_value_correct(self, n):
        cl = HyadesCluster()
        vals = [float(i + 1) for i in range(n)]
        res, _ = des_global_sum(cl, vals)
        assert all(v == pytest.approx(sum(vals)) for v in res)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_latency_within_10pct_of_paper(self, n):
        cl = HyadesCluster()
        _, t = des_global_sum(cl, [1.0] * n)
        assert t == pytest.approx(self.paper[n], rel=0.10)

    def test_latency_grows_with_log_n(self):
        ts = []
        for n in (2, 4, 8, 16):
            cl = HyadesCluster()
            _, t = des_global_sum(cl, [0.0] * n)
            ts.append(t)
        assert ts == sorted(ts)
        # roughly linear in log2 N
        slope1 = ts[1] - ts[0]
        slope3 = ts[3] - ts[2]
        assert slope3 == pytest.approx(slope1, rel=0.35)

    def test_fig8_partials_on_wire(self):
        cl = HyadesCluster()
        record = []
        vals = [float(i) for i in range(8)]
        des_global_sum(cl, vals, record=record)
        by_round_node = {(i, r): v for i, r, v in record}
        assert by_round_node[(0, 0)] == vals[0] + vals[1]
        assert by_round_node[(2, 5)] == sum(vals)

    def test_barrier_is_a_dataless_gsum(self):
        cl = HyadesCluster()
        t = des_barrier(cl, 16)
        assert t == pytest.approx(self.paper[16], rel=0.10)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            des_global_sum(HyadesCluster(), [1.0] * 3)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=64))
@settings(max_examples=50)
def test_property_butterfly_equals_fsum(vals):
    # pad to power of two with zeros
    n = 1
    while n < len(vals):
        n *= 2
    padded = list(vals) + [0.0] * (n - len(vals))
    results, _ = butterfly_global_sum(padded)
    assert results[0] == pytest.approx(math.fsum(vals), rel=1e-12, abs=1e-9)


@given(st.integers(min_value=0, max_value=5))
def test_property_all_ranks_agree(exp):
    n = 2**exp
    rng = np.random.default_rng(exp)
    vals = rng.standard_normal(n).tolist()
    results, _ = butterfly_global_sum(vals)
    assert len(set(results)) == 1
