"""Tests for the lockstep BSP runtime's virtual-time accounting."""

import numpy as np
import pytest

from repro.parallel.runtime import LockstepRuntime, MachineModel
from repro.parallel.tiling import Decomposition

US = 1e-6


def make_runtime(px=4, py=4, cpus_per_node=2, olx=3):
    d = Decomposition(128, 64, px, py, olx=olx)
    return LockstepRuntime(d, cpus_per_node=cpus_per_node)


class TestComputeCharging:
    def test_uniform_flops(self):
        rt = make_runtime()
        rt.charge_compute(50e6, phase="ps")  # one second at Fps
        assert rt.elapsed == pytest.approx(1.0)
        assert rt.total_flops() == 16 * 50e6

    def test_ds_phase_uses_fds(self):
        rt = make_runtime()
        rt.charge_compute(60e6, phase="ds")
        assert rt.elapsed == pytest.approx(1.0)

    def test_unknown_phase_rejected(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.charge_compute(1.0, phase="xx")

    def test_heterogeneous_flops_slowest_wins(self):
        rt = make_runtime()
        flops = np.zeros(16)
        flops[3] = 100e6
        rt.charge_compute(flops, phase="ps")
        assert rt.elapsed == pytest.approx(2.0)

    def test_custom_machine_model(self):
        d = Decomposition(128, 64, 4, 4, olx=3)
        rt = LockstepRuntime(d, machine=MachineModel(fps=100e6, fds=120e6))
        rt.charge_compute(100e6, phase="ps")
        assert rt.elapsed == pytest.approx(1.0)


class TestExchangeAccounting:
    def test_3d_exchange_cost_matches_fig11(self):
        """One 3-D field exchange at the reference config, mix-mode:
        the 1640 us of Fig. 11 (within model tolerance)."""
        rt = make_runtime()
        fields = [t.alloc3d(10) for t in rt.decomp.tiles]
        rt.exchange(fields)
        # interior tiles pay the full 4-neighbour cost
        worst = max(st.exchange_time for st in rt.stats)
        assert worst == pytest.approx(1640 * US, rel=0.05)

    def test_five_field_ps_exchange(self):
        rt = make_runtime()
        fields = [[t.alloc3d(10) for t in rt.decomp.tiles] for _ in range(5)]
        rt.exchange(fields)
        worst = max(st.exchange_time for st in rt.stats)
        assert worst == pytest.approx(5 * 1640 * US, rel=0.05)
        assert rt.stats[0].n_exchanges == 5

    def test_exchange_moves_data(self):
        rt = make_runtime(px=2, py=2, olx=1)
        fields = [t.alloc2d() for t in rt.decomp.tiles]
        for r, f in enumerate(fields):
            f[rt.decomp.tile(r).interior] = float(r)
        rt.exchange(fields)
        o = rt.decomp.olx
        t0 = rt.decomp.tile(0)
        # tile 0's east halo came from tile 1's interior
        assert fields[0][o, o + t0.nx] == 1.0

    def test_wall_tiles_cheaper_than_interior(self):
        rt = make_runtime()
        fields = [t.alloc3d(10) for t in rt.decomp.tiles]
        rt.exchange(fields)
        # rank 0 sits on the south wall: 3 neighbours, not 4
        assert rt.stats[0].exchange_time < max(s.exchange_time for s in rt.stats)


class TestGlobalSumAccounting:
    def test_value_and_cost(self):
        rt = make_runtime()  # 16 ranks on 8 SMPs
        result = rt.global_sum([1.0] * 16)
        assert result == pytest.approx(16.0)
        # 2x8-way mix-mode global sum: 13.5 us (Fig. 11).
        assert rt.stats[0].gsum_time == pytest.approx(13.5 * US)

    def test_single_cpu_per_node_uses_flat_table(self):
        rt = make_runtime(cpus_per_node=1)
        rt.global_sum([0.0] * 16)
        assert rt.stats[0].gsum_time == pytest.approx(18.2 * US)

    def test_gsum_synchronizes_clocks(self):
        rt = make_runtime()
        flops = np.zeros(16)
        flops[0] = 50e6
        rt.charge_compute(flops, phase="ps")
        rt.global_sum([0.0] * 16)
        assert np.allclose(rt.clocks, rt.clocks[0])
        assert rt.elapsed == pytest.approx(1.0 + 13.5 * US)

    def test_sync_time_recorded_for_fast_ranks(self):
        rt = make_runtime()
        flops = np.zeros(16)
        flops[0] = 50e6
        rt.charge_compute(flops, phase="ps")
        rt.global_sum([0.0] * 16)
        assert rt.stats[1].sync_time == pytest.approx(1.0)
        assert rt.stats[0].sync_time == pytest.approx(0.0)


class TestRuntimeMisc:
    def test_sustained_flops(self):
        rt = make_runtime()
        rt.charge_compute(50e6, phase="ps")
        # no communication: sustained = 16 * Fps
        assert rt.sustained_flops() == pytest.approx(16 * 50e6)

    def test_summary_keys(self):
        rt = make_runtime()
        rt.charge_compute(1e6, phase="ps")
        s = rt.summary()
        for key in ("elapsed", "compute_time", "exchange_time", "gsum_time", "sustained_flops"):
            assert key in s

    def test_barrier_syncs(self):
        rt = make_runtime()
        flops = np.zeros(16)
        flops[5] = 5e6
        rt.charge_compute(flops, phase="ps")
        rt.barrier()
        assert np.allclose(rt.clocks, rt.clocks[0])

    def test_invalid_cpus_per_node(self):
        d = Decomposition(128, 64, 4, 4)
        with pytest.raises(ValueError):
            LockstepRuntime(d, cpus_per_node=0)
        with pytest.raises(ValueError):
            LockstepRuntime(d, cpus_per_node=3)

    def test_elapsed_zero_initially(self):
        assert make_runtime().elapsed == 0.0
        assert make_runtime().sustained_flops() == 0.0
