"""Tests of the two-priority design working as Section 2.2 intends:
control traffic (VI negotiation) rides HIGH and cannot be starved by
bulk LOW data — the property that keeps new transfers startable while
others stream."""

import pytest

from repro.hardware.cluster import HyadesCluster


def test_negotiation_overtakes_bulk_data():
    """While a large VI transfer streams 0->1, a new transfer 0->2 is
    negotiated; its HIGH request must not wait for the bulk LOW stream
    to drain the shared uplink."""
    cluster = HyadesCluster()
    eng = cluster.engine
    marks = {}

    def bulk_sender():
        yield from cluster.niu(0).vi_send(1, 256 * 1024)  # ~2.4 ms stream

    def bulk_receiver():
        xfer = yield from cluster.niu(1).vi_serve_request()
        yield from cluster.niu(1).vi_wait_complete(xfer.xid)
        marks["bulk_done"] = eng.now

    def late_sender():
        yield eng.timeout(100e-6)  # bulk already streaming
        t0 = eng.now
        yield from cluster.niu(0).vi_send(2, 1024)
        marks["late_sent"] = eng.now - t0

    def late_receiver():
        xfer = yield from cluster.niu(2).vi_serve_request()
        yield from cluster.niu(2).vi_wait_complete(xfer.xid)
        marks["late_done"] = eng.now

    eng.process(bulk_sender())
    eng.process(bulk_receiver())
    eng.process(late_sender())
    eng.process(late_receiver())
    eng.run()
    # the late 1 KB transfer finishes long before the 256 KB stream
    assert marks["late_done"] < marks["bulk_done"]
    # and its total time stays near the unloaded 1 KB cost (~18 us),
    # not the milliseconds of bulk still queued: negotiation rode HIGH
    assert marks["late_sent"] < 150e-6


def test_vi_requests_served_in_arrival_order():
    cluster = HyadesCluster()
    eng = cluster.engine
    order = []

    def sender(src, delay):
        yield eng.timeout(delay)
        yield from cluster.niu(src).vi_send(3, 512)

    def receiver():
        for _ in range(3):
            xfer = yield from cluster.niu(3).vi_serve_request()
            xfer = yield from cluster.niu(3).vi_wait_complete(xfer.xid)
            order.append(xfer.src)

    for i, src in enumerate((0, 1, 2)):
        eng.process(sender(src, i * 50e-6))
    eng.process(receiver())
    eng.run()
    assert order == [0, 1, 2]


def test_gsum_quality_unharmed_by_background_bulk():
    """An 8-way global sum completes in near-unloaded time while bulk
    VI data streams between two uninvolved nodes, thanks to priority
    separation and fat-tree path diversity."""
    from repro.parallel.des_collectives import des_global_sum

    cluster = HyadesCluster()
    eng = cluster.engine

    def bulk():
        yield from cluster.niu(8).vi_send(9, 128 * 1024)

    def bulk_rx():
        xfer = yield from cluster.niu(9).vi_serve_request()
        yield from cluster.niu(9).vi_wait_complete(xfer.xid)

    eng.process(bulk())
    eng.process(bulk_rx())
    # run the gsum among nodes 0..7 concurrently with the bulk stream
    res, t = des_global_sum(cluster, [float(i) for i in range(8)])
    assert res[0] == pytest.approx(sum(range(8)))
    assert t < 1.3 * 12.8e-6  # within 30% of the unloaded 8-way time
