"""Tests for StarT-X PIO mode against the paper's Fig. 2 LogP table."""

import pytest

from repro.hardware import HyadesCluster
from repro.niu.startx import PIO_COST_MODEL

US = 1e-6


class TestPIOCostModel:
    """Analytic Os/Or from the PCI parameters (Sections 2.1/2.3)."""

    def test_8_byte_send_overhead(self):
        # "two 8-byte (header plus payload) mmap accesses" -> 0.36 us.
        assert PIO_COST_MODEL.os_time(8) == pytest.approx(0.36 * US)

    def test_8_byte_recv_overhead(self):
        assert PIO_COST_MODEL.or_time(8) == pytest.approx(1.86 * US)

    def test_64_byte_send_overhead_matches_fig2(self):
        # Fig 2 measures Os = 1.7 us for 64-byte payloads.
        assert PIO_COST_MODEL.os_time(64) == pytest.approx(1.7 * US, rel=0.06)

    def test_64_byte_recv_overhead_matches_fig2(self):
        # Fig 2 measures Or = 8.6 us.
        assert PIO_COST_MODEL.or_time(64) == pytest.approx(8.6 * US, rel=0.04)

    def test_accesses_counts_header(self):
        assert PIO_COST_MODEL.accesses(8) == 2
        assert PIO_COST_MODEL.accesses(64) == 9


def ping_pong(src, dst, payload_words):
    """Run one DES ping-pong; return one-way time (RTT/2) in seconds."""
    cluster = HyadesCluster()
    eng = cluster.engine
    out = {}

    def pinger():
        t0 = eng.now
        yield from cluster.niu(src).pio_send(dst, payload_words)
        yield from cluster.niu(src).pio_recv()
        out["rtt"] = eng.now - t0

    def ponger():
        yield from cluster.niu(dst).pio_recv()
        yield from cluster.niu(dst).pio_send(src, payload_words)

    eng.process(pinger())
    eng.process(ponger())
    eng.run()
    return out["rtt"] / 2


class TestPIOPingPongDES:
    def test_8_byte_half_rtt_matches_fig2(self):
        # Fig 2: Tround-trip/2 = 3.7 us for 8-byte payloads.
        t = ping_pong(0, 15, [1, 2])
        assert t == pytest.approx(3.7 * US, rel=0.10)

    def test_64_byte_half_rtt_matches_fig2(self):
        # Fig 2: Tround-trip/2 = 11.7 us for 64-byte payloads.
        t = ping_pong(0, 15, list(range(16)))
        assert t == pytest.approx(11.7 * US, rel=0.10)

    def test_near_pair_faster_than_far_pair(self):
        assert ping_pong(0, 1, [1, 2]) < ping_pong(0, 15, [1, 2])

    def test_network_latency_consistent_with_fig2(self):
        # L = RTT/2 - Os - Or ~= 1.3 us for 8-byte payloads.
        t = ping_pong(0, 15, [1, 2])
        L = t - PIO_COST_MODEL.os_time(8) - PIO_COST_MODEL.or_time(8)
        assert L == pytest.approx(1.3 * US, rel=0.25)


class TestPIOSemantics:
    def test_payload_data_delivered_intact(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        got = []

        def sender():
            yield from cluster.niu(2).pio_send(7, [10, 20, 30], tag=5, data={"k": 1})

        def receiver():
            pkt = yield from cluster.niu(7).pio_recv()
            got.append(pkt)

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        (pkt,) = got
        assert pkt.payload_words == [10, 20, 30]
        assert pkt.tag == 5
        assert pkt.data == {"k": 1}
        assert pkt.src == 2

    def test_many_messages_fifo_between_pair(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        got = []

        def sender():
            for i in range(20):
                yield from cluster.niu(0).pio_send(9, [i, 0])

        def receiver():
            for _ in range(20):
                pkt = yield from cluster.niu(9).pio_recv()
                got.append(pkt.payload_words[0])

        eng.process(sender())
        eng.process(receiver())
        eng.run()
        assert got == list(range(20))

    def test_try_recv_returns_none_when_empty(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        got = []

        def poller():
            pkt = yield from cluster.niu(3).pio_try_recv()
            got.append(pkt)

        eng.process(poller())
        eng.run()
        assert got == [None]
        # One status read was charged.
        assert eng.now == pytest.approx(0.93 * US)
