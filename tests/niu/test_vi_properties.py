"""Property-based tests of VI-mode transfers and PCI accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.network.costmodel import arctic_cost_model


def vi_roundtrip(nbytes, payload=None, src=0, dst=1, n_nodes=4):
    cluster = HyadesCluster(HyadesConfig(n_nodes=n_nodes))
    eng = cluster.engine
    out = {}

    def sender():
        yield from cluster.niu(src).vi_send(dst, nbytes, data=payload)

    def receiver():
        xfer = yield from cluster.niu(dst).vi_serve_request()
        xfer = yield from cluster.niu(dst).vi_wait_complete(xfer.xid)
        out["xfer"] = xfer
        out["t"] = eng.now

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    return out


@given(nbytes=st.integers(min_value=1, max_value=65536))
@settings(max_examples=30, deadline=None)
def test_property_any_size_completes_exactly(nbytes):
    out = vi_roundtrip(nbytes)
    assert out["xfer"].complete
    assert out["xfer"].received == nbytes


@given(nbytes=st.integers(min_value=64, max_value=32768))
@settings(max_examples=20, deadline=None)
def test_property_timing_tracks_cost_model(nbytes):
    out = vi_roundtrip(nbytes)
    model = arctic_cost_model()
    assert out["t"] == pytest.approx(model.transfer_time(nbytes), rel=0.12)


@given(data=st.binary(min_size=1, max_size=4096))
@settings(max_examples=20, deadline=None)
def test_property_payload_bitexact(data):
    out = vi_roundtrip(len(data), payload=data)
    assert bytes(out["xfer"].data) == data


@given(
    a=st.integers(min_value=0, max_value=3),
    b=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_property_any_pair_works(a, b):
    if a == b:
        return
    out = vi_roundtrip(512, src=a, dst=b)
    assert out["xfer"].complete
    assert out["xfer"].src == a


def test_pci_counters_track_traffic():
    cluster = HyadesCluster(HyadesConfig(n_nodes=2))
    eng = cluster.engine

    def sender():
        yield from cluster.niu(0).pio_send(1, [1, 2])

    def receiver():
        yield from cluster.niu(1).pio_recv()

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    # 8-byte payload: header + payload = 2 write accesses, 2 reads
    assert cluster.niu(0).pci.total_mmap_writes == 2
    assert cluster.niu(1).pci.total_mmap_reads == 2
    assert cluster.niu(0).packets_sent == 1
    assert cluster.niu(1).packets_received == 1
