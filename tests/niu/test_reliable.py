"""The go-back-N reliable-delivery layer over the StarT-X NIU."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFaultModel
from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.niu.reliable import DeliveryError, ReliableNIU, get_reliable


def build(n_nodes=4, plan=None, **params):
    cluster = HyadesCluster(HyadesConfig(n_nodes=n_nodes))
    inj = FaultInjector(cluster.fabric, plan) if plan is not None else None
    rnius = [get_reliable(cluster.niu(i), **params) for i in range(n_nodes)]
    return cluster, rnius, inj


def transfer(cluster, rnius, payloads, src=0, dst=1, channel=0):
    """Ship ``payloads`` src -> dst through the reliable layer; returns
    the received (tag, bytes) list in arrival order."""
    eng = cluster.engine
    got = []

    def sender():
        for tag, data in payloads:
            yield from rnius[src].send(dst, tag=tag, data=data, channel=channel)

    def receiver():
        for _ in payloads:
            msg = yield from rnius[dst].recv(channel=channel)
            got.append((msg.tag, msg.data))

    eng.process(sender(), name="sender")
    eng.process(receiver(), name="receiver")
    eng.run(watchdog=True)
    return got


class TestCleanDelivery:
    def test_small_message_round_trip(self):
        cluster, rnius, _ = build()
        got = transfer(cluster, rnius, [(7, b"hello reliable world")])
        assert got == [(7, b"hello reliable world")]

    def test_large_message_fragments_and_reassembles(self):
        rng = np.random.default_rng(0)
        blob = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        cluster, rnius, _ = build()
        got = transfer(cluster, rnius, [(1, blob)])
        assert got == [(1, blob)]

    def test_fifo_order_preserved(self):
        cluster, rnius, _ = build()
        payloads = [(i, bytes([i]) * (10 + i)) for i in range(20)]
        got = transfer(cluster, rnius, payloads)
        assert got == payloads

    def test_zero_byte_message(self):
        cluster, rnius, _ = build()
        assert transfer(cluster, rnius, [(3, b"")]) == [(3, b"")]

    def test_no_retransmissions_on_clean_fabric(self):
        cluster, rnius, _ = build()
        transfer(cluster, rnius, [(0, b"x" * 1000)])
        st = rnius[0].stats()
        assert st["retransmissions"] == 0
        assert st["nacks_sent"] == 0

    def test_delivery_costs_simulated_time(self):
        cluster, rnius, _ = build()
        transfer(cluster, rnius, [(0, b"x" * 1000)])
        assert cluster.engine.now > 0.0


class TestChannels:
    def test_channels_do_not_steal_messages(self):
        cluster, rnius, _ = build()
        eng = cluster.engine
        got = {1: [], 2: []}

        def sender():
            yield from rnius[0].send(1, tag=0, data=b"for-ch1", channel=1)
            yield from rnius[0].send(1, tag=0, data=b"for-ch2", channel=2)

        def receiver(ch):
            msg = yield from rnius[1].recv(channel=ch)
            got[ch].append(msg.data)

        eng.process(sender(), name="s")
        # start the receivers in reverse channel order on purpose
        eng.process(receiver(2), name="r2")
        eng.process(receiver(1), name="r1")
        eng.run(watchdog=True)
        assert got == {1: [b"for-ch1"], 2: [b"for-ch2"]}

    def test_bidirectional_flows_independent(self):
        cluster, rnius, _ = build()
        eng = cluster.engine
        got = {}

        def node(me, peer):
            yield from rnius[me].send(peer, tag=me, data=bytes([me]) * 100)
            msg = yield from rnius[me].recv()
            got[me] = msg.data

        eng.process(node(0, 1), name="n0")
        eng.process(node(1, 0), name="n1")
        eng.run(watchdog=True)
        assert got == {0: b"\x01" * 100, 1: b"\x00" * 100}


class TestLossRecovery:
    @pytest.mark.parametrize("drop", [0.001, 0.01, 0.1])
    def test_seeded_drops_recovered_in_order(self, drop):
        plan = FaultPlan(seed=13, drop_prob=drop)
        cluster, rnius, inj = build(plan=plan)
        payloads = [(i % 16, bytes([i % 256]) * 200) for i in range(30)]
        got = transfer(cluster, rnius, payloads)
        assert got == payloads

    def test_corruption_recovered(self):
        plan = FaultPlan(seed=3, corrupt_prob=0.05)
        cluster, rnius, inj = build(plan=plan)
        rng = np.random.default_rng(3)
        blob = rng.integers(0, 256, size=5000, dtype=np.uint8).tobytes()
        got = transfer(cluster, rnius, [(0, blob)])
        assert got == [(0, blob)]
        assert inj.injected_corruptions > 0

    def test_drops_cost_extra_simulated_time(self):
        payloads = [(0, b"y" * 2000)]
        clean_cluster, clean_rnius, _ = build()
        transfer(clean_cluster, clean_rnius, payloads)
        faulty_cluster, faulty_rnius, _ = build(plan=FaultPlan(seed=1, drop_prob=0.05))
        transfer(faulty_cluster, faulty_rnius, payloads)
        assert faulty_cluster.engine.now > clean_cluster.engine.now
        assert faulty_rnius[0].stats()["retransmissions"] > 0

    def test_retry_exhaustion_raises_structured_error(self):
        """A destination whose path drops everything must fail loudly
        with the flow coordinates, not hang."""
        plan = FaultPlan(
            seed=0, link_overrides={"niu0^": LinkFaultModel(drop_prob=1.0)}
        )
        cluster, rnius, _ = build(plan=plan, base_rto=20e-6, max_retries=4)
        eng = cluster.engine

        def sender():
            yield from rnius[0].send(1, tag=0, data=b"doomed")

        eng.process(sender(), name="sender")
        with pytest.raises(DeliveryError) as ei:
            eng.run(watchdog=True)
        err = ei.value
        assert err.src == 0 and err.dst == 1
        assert err.attempts == 4
        assert "0->1" in str(err) and "gave up" in str(err)


class TestLayerManagement:
    def test_get_reliable_caches_per_niu(self):
        cluster = HyadesCluster(HyadesConfig(n_nodes=2))
        a = get_reliable(cluster.niu(0))
        assert get_reliable(cluster.niu(0)) is a
        assert get_reliable(cluster.niu(1)) is not a

    def test_get_reliable_rejects_conflicting_params(self):
        cluster = HyadesCluster(HyadesConfig(n_nodes=2))
        get_reliable(cluster.niu(0), window=8)
        with pytest.raises(ValueError):
            get_reliable(cluster.niu(0), window=4)

    def test_rx_hook_exclusive(self):
        cluster = HyadesCluster(HyadesConfig(n_nodes=2))
        ReliableNIU(cluster.niu(0))
        with pytest.raises(RuntimeError):
            ReliableNIU(cluster.niu(0))

    def test_stats_accounting_consistent(self):
        plan = FaultPlan(seed=5, drop_prob=0.02)
        cluster, rnius, _ = build(plan=plan)
        payloads = [(0, b"z" * 500)] * 4
        transfer(cluster, rnius, payloads)
        tx, rx = rnius[0].stats(), rnius[1].stats()
        assert rx["messages_delivered"] == 4
        assert tx["data_sent"] >= rx["data_received"]
        assert tx["acks_received"] <= rx["acks_sent"]
