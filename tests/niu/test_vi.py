"""Tests for StarT-X VI mode: negotiation, streaming, Fig. 7 bandwidth."""

import pytest

from repro.hardware import HyadesCluster
from repro.network.costmodel import arctic_cost_model

US = 1e-6


def vi_transfer(nbytes, data=None, src=0, dst=1):
    """Run one VI transfer on a fresh cluster; return (elapsed, xfer)."""
    cluster = HyadesCluster()
    eng = cluster.engine
    out = {}

    def sender():
        yield from cluster.niu(src).vi_send(dst, nbytes, data=data)

    def receiver():
        xfer = yield from cluster.niu(dst).vi_serve_request()
        xfer = yield from cluster.niu(dst).vi_wait_complete(xfer.xid)
        out["t"] = eng.now
        out["xfer"] = xfer

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    return out["t"], out["xfer"]


class TestVIBandwidthCurve:
    """DES-measured bandwidth should track the Fig. 7 analytic curve."""

    @pytest.mark.parametrize("nbytes", [256, 1024, 4096, 9216, 32768, 131072])
    def test_tracks_analytic_model(self, nbytes):
        model = arctic_cost_model()
        t, _ = vi_transfer(nbytes)
        measured = nbytes / t
        predicted = model.perceived_bandwidth(nbytes)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_1kb_is_about_57_mbs(self):
        t, _ = vi_transfer(1024)
        assert 1024 / t == pytest.approx(56.8e6, rel=0.05)

    def test_9kb_reaches_90_percent_of_peak(self):
        t, _ = vi_transfer(9 * 1024)
        assert 9 * 1024 / t >= 0.9 * 110e6 * 0.98

    def test_bandwidth_monotone_in_size(self):
        sizes = [512, 2048, 8192, 65536]
        bws = []
        for s in sizes:
            t, _ = vi_transfer(s)
            bws.append(s / t)
        assert bws == sorted(bws)


class TestVISemantics:
    def test_data_arrives_intact(self):
        payload = bytes(range(256)) * 5
        _, xfer = vi_transfer(len(payload), data=payload)
        assert bytes(xfer.data) == payload
        assert xfer.complete

    def test_transfer_accounting(self):
        _, xfer = vi_transfer(5000)
        assert xfer.nbytes == 5000
        assert xfer.received == 5000

    def test_zero_byte_transfer_rejected(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        errors = []

        def sender():
            try:
                yield from cluster.niu(0).vi_send(1, 0)
            except ValueError as e:
                errors.append(e)

        eng.process(sender())
        eng.run()
        assert len(errors) == 1

    def test_concurrent_transfers_to_distinct_receivers(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        done = {}

        def sender(dst, nbytes):
            yield from cluster.niu(0).vi_send(dst, nbytes)

        def receiver(dst):
            xfer = yield from cluster.niu(dst).vi_serve_request()
            xfer = yield from cluster.niu(dst).vi_wait_complete(xfer.xid)
            done[dst] = xfer

        for dst in (1, 2, 3):
            eng.process(sender(dst, 4096))
            eng.process(receiver(dst))
        eng.run()
        assert sorted(done) == [1, 2, 3]
        assert all(x.complete for x in done.values())

    def test_two_simultaneous_senders_to_one_receiver(self):
        cluster = HyadesCluster()
        eng = cluster.engine
        done = []

        def sender(src):
            yield from cluster.niu(src).vi_send(5, 2048)

        def receiver():
            for _ in range(2):
                xfer = yield from cluster.niu(5).vi_serve_request()
                xfer = yield from cluster.niu(5).vi_wait_complete(xfer.xid)
                done.append(xfer)

        eng.process(sender(1))
        eng.process(sender(2))
        eng.process(receiver())
        eng.run()
        assert len(done) == 2
        assert {x.src for x in done} == {1, 2}

    def test_sequential_exchange_pattern(self):
        """The exchange primitive's two sequential opposite transfers."""
        cluster = HyadesCluster()
        eng = cluster.engine
        out = {}

        def node_a():
            yield from cluster.niu(0).vi_send(1, 8192)
            xfer = yield from cluster.niu(0).vi_serve_request()
            yield from cluster.niu(0).vi_wait_complete(xfer.xid)
            out["a_done"] = eng.now

        def node_b():
            xfer = yield from cluster.niu(1).vi_serve_request()
            yield from cluster.niu(1).vi_wait_complete(xfer.xid)
            yield from cluster.niu(1).vi_send(0, 8192)
            out["b_done"] = eng.now

        eng.process(node_a())
        eng.process(node_b())
        eng.run()
        model = arctic_cost_model()
        # Two sequential 8 KB transfers.
        expected = 2 * model.transfer_time(8192)
        assert out["a_done"] == pytest.approx(expected, rel=0.12)
