"""Backend equivalence: bit-exact numerics, banded timings, hybrid windows.

The backend contract (docs/backends.md): fidelity changes *when* phases
are charged, never *what* the model computes — so GCM state must be
bit-exact across tiers, cheap-tier phase times must sit within the 5 %
band of DES, and the hybrid tier must actually switch to DES fidelity
for faulted windows.
"""

import pytest

from repro.backend import DESBackend, HybridBackend, run_crossval
from repro.gcm.coupled import coupled_model
from repro.service.jobs import model_digest

#: A reduced coupled configuration: big enough to exercise both solvers
#: and the coupler, small enough to run three tiers in a few seconds.
SMALL = dict(
    nx=16, ny=8, nz_atm=3, nz_ocn=4, px=2, py=2, dt=300.0, coupling_interval=2
)
WINDOWS = 2


def _run(backend, windows=WINDOWS, **overrides):
    cm = coupled_model(backend=backend, **{**SMALL, **overrides})
    cm.run(windows)
    return cm


def _digest(cm):
    return model_digest(cm.atmosphere) + "+" + model_digest(cm.ocean)


@pytest.fixture(scope="module")
def tier_runs():
    """One small coupled run per tier, shared across the module."""
    return {tier: _run(tier) for tier in ("des", "analytic", "hybrid")}


class TestBitExactness:
    def test_state_digests_identical_across_tiers(self, tier_runs):
        digests = {t: _digest(cm) for t, cm in tier_runs.items()}
        assert len(set(digests.values())) == 1, digests

    def test_flop_counts_identical_across_tiers(self, tier_runs):
        flops = {
            t: (cm.atmosphere.runtime.total_flops(), cm.ocean.runtime.total_flops())
            for t, cm in tier_runs.items()
        }
        assert len(set(flops.values())) == 1, flops


class TestTimingBand:
    def test_phase_times_within_band_of_des(self, tier_runs):
        des = tier_runs["des"]

        def phases(cm):
            a, o = cm.atmosphere.runtime.summary(), cm.ocean.runtime.summary()
            return {
                "exchange": a["exchange_time"] + o["exchange_time"],
                "gsum": a["gsum_time"] + o["gsum_time"],
                "elapsed": cm.elapsed,
            }

        ref = phases(des)
        for tier in ("analytic", "hybrid"):
            got = phases(tier_runs[tier])
            for q, v in ref.items():
                err = abs(got[q] - v) / v
                assert err <= 0.05, f"{tier} {q}: {err:.1%} off DES"

    def test_crossval_gate_passes(self):
        report = run_crossval(windows=1)
        assert report["passed"], report
        assert report["bit_exact"]
        assert report["max_rel_err"] <= report["tolerance"]


class TestHybridWindows:
    def test_fault_plan_windows_served_by_des(self):
        hb = HybridBackend(fault_windows={1})
        cm = _run(hb, windows=3)
        stats = hb.tier_stats()
        assert stats["windows"] == {"analytic": 2, "des": 1}
        assert stats["queries"]["des"] > 0
        # the packet simulations actually ran for the faulted window
        assert hb.des.simulations > 0

    def test_faulted_step_forces_des_fidelity(self):
        hb = HybridBackend()
        cm = coupled_model(backend=hb, **SMALL)
        cm.step_coupled(faulted=True)
        assert hb.tier_stats()["windows"]["des"] == 1
        cm.step_coupled()
        assert hb.tier_stats()["windows"]["analytic"] == 1

    def test_hybrid_state_unaffected_by_fault_windows(self, tier_runs):
        hb = HybridBackend(fault_windows={0})
        cm = _run(hb)
        assert _digest(cm) == _digest(tier_runs["analytic"])

    def test_shared_instance_serves_both_isomorphs(self):
        hb = HybridBackend()
        cm = coupled_model(backend=hb, **SMALL)
        assert cm.backends() == [hb]
        des = DESBackend()
        cm2 = coupled_model(backend=des, **SMALL)
        assert cm2.atmosphere.runtime.backend is des
        assert cm2.ocean.runtime.backend is des
