"""The stacked-tile CG fast path is bit-exact against the reference loop.

``repro.gcm.cg.FORCE_REFERENCE`` routes stacked-capable operators back
through the per-tile loop; these tests run identical model
configurations down both paths and require bitwise-identical prognostic
state and identical charged flops — the guarantee that lets
``benchmarks/bench_backend.py`` reconstruct the seed solver cost live.
"""

import numpy as np
import pytest

from repro.gcm import cg
from repro.gcm.grid import Grid, GridParams
from repro.gcm.ocean import ocean_model
from repro.gcm.operators import FlopCounter
from repro.gcm.pressure import EllipticOperator
from repro.parallel.tiling import Decomposition
from repro.service.jobs import model_digest


@pytest.fixture
def force_reference():
    """Temporarily pin the solver to the per-tile reference loop."""
    saved = cg.FORCE_REFERENCE
    cg.FORCE_REFERENCE = True
    try:
        yield
    finally:
        cg.FORCE_REFERENCE = saved


def _solve(rhs_global, force):
    decomp = Decomposition(nx=16, ny=8, px=2, py=2)
    params = GridParams(nx=16, ny=8, nz=1, lat0=-60, lat1=60, total_depth=50.0)
    grid = Grid(params, decomp)
    operator = EllipticOperator(grid)
    o = decomp.olx
    rhs = []
    for t in decomp.tiles:
        arr = t.alloc2d(float)
        arr[o : o + t.ny, o : o + t.nx] = rhs_global[
            t.y0 : t.y0 + t.ny, t.x0 : t.x0 + t.nx
        ]
        rhs.append(arr)
    saved = cg.FORCE_REFERENCE
    cg.FORCE_REFERENCE = force
    try:
        res = cg.preconditioned_cg(operator, rhs, FlopCounter(), tol=1e-12)
    finally:
        cg.FORCE_REFERENCE = saved
    return res


class TestStandaloneSolve:
    def test_solution_bitwise_equal(self):
        rng = np.random.default_rng(7)
        rhs = rng.standard_normal((8, 16))
        rhs -= rhs.mean()  # compatible RHS for the singular operator
        fast = _solve(rhs, force=False)
        ref = _solve(rhs, force=True)
        assert fast.iterations == ref.iterations
        assert fast.residual == ref.residual
        assert fast.initial_residual == ref.initial_residual
        for a, b in zip(fast.x, ref.x):
            np.testing.assert_array_equal(a, b)

    def test_zero_rhs_short_circuits_both_paths(self):
        rhs = np.zeros((8, 16))
        for force in (False, True):
            res = _solve(rhs, force=force)
            assert res.converged and res.iterations == 0


class TestFullModel:
    KW = dict(nx=16, ny=8, px=2, py=2, dt=1200.0)

    def _digest_and_flops(self, steps=6, **kw):
        m = ocean_model(**{**self.KW, **kw})
        m.run(steps)
        return model_digest(m), m.runtime.total_flops()

    def test_hydrostatic_model_bit_exact(self, force_reference):
        ref = self._digest_and_flops(nz=4)
        cg.FORCE_REFERENCE = False
        fast = self._digest_and_flops(nz=4)
        assert fast == ref

    def test_nonhydrostatic_model_bit_exact(self, force_reference):
        ref = self._digest_and_flops(nz=4, nonhydrostatic=True, cg_tol=1e-11)
        cg.FORCE_REFERENCE = False
        fast = self._digest_and_flops(nz=4, nonhydrostatic=True, cg_tol=1e-11)
        assert fast == ref
