"""The redesign's compatibility shims: old spellings work but warn."""

import warnings

import pytest

from repro.backend import AnalyticBackend
from repro.collectives.tuner import Autotuner
from repro.network.costmodel import arctic_cost_model
from repro.parallel.globalsum import GlobalSummer
from repro.parallel.runtime import LockstepRuntime
from repro.parallel.tiling import Decomposition


def _decomp():
    return Decomposition(nx=16, ny=8, px=2, py=2)


class TestLockstepRuntime:
    def test_cost_model_kwarg_warns_and_works(self):
        model = arctic_cost_model()
        with pytest.warns(DeprecationWarning, match="backend="):
            rt = LockstepRuntime(_decomp(), cost_model=model)
        assert rt.backend.model is model

    def test_positional_cost_model_warns_and_works(self):
        model = arctic_cost_model()
        with pytest.warns(DeprecationWarning, match="backend="):
            rt = LockstepRuntime(_decomp(), model)
        assert rt.backend.model is model

    def test_tuner_kwarg_warns_and_threads_through(self):
        tuner = Autotuner(arctic_cost_model())
        with pytest.warns(DeprecationWarning, match="backend="):
            rt = LockstepRuntime(_decomp(), tuner=tuner)
        assert rt.tuner is tuner

    def test_backend_plus_legacy_kwarg_rejected(self):
        with pytest.raises(ValueError, match="deprecated spellings"):
            LockstepRuntime(
                _decomp(), backend="analytic", cost_model=arctic_cost_model()
            )

    def test_cost_model_property_aliases_backend_model(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new spelling must not warn
            rt = LockstepRuntime(_decomp(), backend="analytic")
        assert rt.cost_model is rt.backend.model

    def test_new_spelling_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            LockstepRuntime(_decomp(), backend=AnalyticBackend())


class TestGlobalSummer:
    def test_tuner_kwarg_warns(self):
        tuner = Autotuner(arctic_cost_model())
        with pytest.warns(DeprecationWarning, match="backend="):
            gs = GlobalSummer(4, algorithm="auto", tuner=tuner)
        assert gs.plan is not None

    def test_backend_plus_tuner_rejected(self):
        with pytest.raises(ValueError, match="deprecated"):
            GlobalSummer(
                4, algorithm="auto", backend="analytic",
                tuner=Autotuner(arctic_cost_model()),
            )

    def test_backend_spelling_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            GlobalSummer(4, algorithm="auto", backend="analytic")


class TestAutotuner:
    def test_backend_and_model_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Autotuner(arctic_cost_model(), backend="analytic")

    def test_backend_kwarg_supplies_the_model(self):
        be = AnalyticBackend()
        tuner = Autotuner(backend=be)
        assert tuner.model is be.model


class TestWarningAttribution:
    """Every legacy spelling must blame the *caller's* line — this
    file — not a frame inside repro's shims (the point of a
    deprecation warning is telling the user which of *their* lines to
    change)."""

    @staticmethod
    def _only_deprecation(records):
        dep = [w for w in records if issubclass(w.category, DeprecationWarning)]
        assert dep, "expected a DeprecationWarning"
        return dep[-1]

    def test_runtime_cost_model_kwarg_blames_caller(self):
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            LockstepRuntime(_decomp(), cost_model=arctic_cost_model())
        assert self._only_deprecation(w).filename == __file__

    def test_runtime_positional_model_blames_caller(self):
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            LockstepRuntime(_decomp(), arctic_cost_model())
        assert self._only_deprecation(w).filename == __file__

    def test_summer_tuner_kwarg_blames_caller(self):
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            GlobalSummer(
                4, algorithm="auto", tuner=Autotuner(arctic_cost_model())
            )
        assert self._only_deprecation(w).filename == __file__

    def test_cli_engine_flag_blames_mains_caller(self):
        from repro.cli import main

        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            main(["backend", "--sweep", "--nodes", "16", "--engine", "analytic"])
        assert self._only_deprecation(w).filename == __file__


class TestCLI:
    def test_engine_flag_warns_and_maps_to_backend(self, capsys):
        from repro.cli import main

        with pytest.warns(DeprecationWarning, match="--backend"):
            rc = main(["backend", "--sweep", "--nodes", "16", "--engine", "analytic"])
        assert rc == 0
        assert "analytic" in capsys.readouterr().out

    def test_backend_flag_is_warning_free(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rc = main(["backend", "--sweep", "--nodes", "16", "--backend", "analytic"])
        assert rc == 0
