"""Backend resolution: names, instances, defaults and the registry."""

import pytest

from repro.backend import (
    BACKEND_NAMES,
    BACKENDS,
    AnalyticBackend,
    CommBackend,
    DESBackend,
    HybridBackend,
    register_backend,
    resolve_backend,
)
from repro.network.costmodel import arctic_cost_model


class TestNames:
    def test_registry_names_are_the_documented_trio(self):
        assert BACKEND_NAMES == ("des", "analytic", "hybrid")

    @pytest.mark.parametrize(
        "name,cls",
        [("des", DESBackend), ("analytic", AnalyticBackend), ("hybrid", HybridBackend)],
    )
    def test_name_resolves_to_tier(self, name, cls):
        be = resolve_backend(name)
        assert isinstance(be, cls)
        assert be.name == name

    def test_names_are_case_insensitive(self):
        assert isinstance(resolve_backend("DES"), DESBackend)

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValueError, match="analytic"):
            resolve_backend("quantum")

    def test_non_string_spec_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(3.14)


class TestInstances:
    def test_instance_passes_through_identically(self):
        be = DESBackend()
        assert resolve_backend(be) is be

    def test_instance_refuses_extra_model(self):
        with pytest.raises(ValueError, match="cost_model"):
            resolve_backend(DESBackend(), model=arctic_cost_model())

    def test_des_refuses_tuner(self):
        with pytest.raises(ValueError, match="tuner"):
            resolve_backend("des", tuner=object())


class TestDefault:
    def test_none_gives_legacy_equivalent_analytic(self):
        be = resolve_backend(None)
        assert isinstance(be, AnalyticBackend)
        # the compatibility default reproduces the pre-backend runtime:
        # measured gsum tables, not the tuner-calibrated variant
        assert be.gsum_time(16) == pytest.approx(18.2e-6)


class TestRegistry:
    def test_custom_tier_registers_and_resolves(self):
        class FreeBackend(AnalyticBackend):
            """Test tier: everything is free."""

            name = "free"

            def exchange_time(self, edge_bytes, mixmode=False, n_ranks=1):
                """Zero-cost exchange."""
                return 0.0

        register_backend("free", FreeBackend)
        try:
            be = resolve_backend("free")
            assert isinstance(be, FreeBackend)
            assert be.exchange_time([1024]) == 0.0
            with pytest.raises(ValueError, match="takes no model"):
                resolve_backend("free", model=arctic_cost_model())
        finally:
            BACKENDS.pop("free", None)


class TestContract:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_describe_is_json_ready(self, name):
        d = resolve_backend(name).describe()
        assert d["backend"] == name
        assert "model" in d

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_begin_window_accepted_by_every_tier(self, name):
        be = resolve_backend(name)
        be.begin_window(0)
        be.begin_window(1, faulted=True)
        assert isinstance(be, CommBackend)

    def test_tier_property_reports_active_fidelity(self):
        hb = resolve_backend("hybrid")
        assert hb.tier == "analytic"  # steady-state default
        hb.begin_window(0, faulted=True)
        assert hb.tier == "des"
        hb.begin_window(1)
        assert hb.tier == "analytic"
