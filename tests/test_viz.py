"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import RAMP, anomaly_map, ascii_map, profile_bars


class TestAsciiMap:
    def test_shape_and_title(self):
        f = np.arange(12, dtype=float).reshape(3, 4)
        out = ascii_map(f, title="T")
        lines = out.splitlines()
        assert lines[0].startswith("T")
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines[1:])

    def test_north_up_puts_last_row_first(self):
        f = np.zeros((2, 3))
        f[1] = 1.0  # northern row
        out = ascii_map(f).splitlines()
        assert out[0] == RAMP[-1] * 3
        assert out[1] == RAMP[0] * 3

    def test_constant_field_renders_lightest(self):
        out = ascii_map(np.full((2, 2), 7.0))
        assert set("".join(out.splitlines())) == {RAMP[0]}

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_map(np.zeros(5))

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30)
    def test_property_always_full_coverage(self, ny, nx, seed):
        rng = np.random.default_rng(seed)
        f = rng.standard_normal((ny, nx))
        lines = ascii_map(f).splitlines()
        assert len(lines) == ny
        for line in lines:
            assert len(line) == nx
            assert set(line) <= set(RAMP)


class TestAnomalyMap:
    def test_zero_field_is_midpoint(self):
        out = anomaly_map(np.zeros((2, 2)))
        chars = set("".join(out.splitlines()))
        assert len(chars) == 1

    def test_sign_asymmetry_visible(self):
        f = np.array([[-1.0, 1.0]])
        out = anomaly_map(f)
        assert out[0] != out[1]


class TestProfileBars:
    def test_labels_and_signs(self):
        out = profile_bars([1.0, -0.5], labels=["a", "b"], width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a") and "+" in lines[0]
        assert lines[1].startswith("b") and "-" in lines[1]

    def test_scaling_to_width(self):
        out = profile_bars([2.0, 1.0], width=20)
        lines = out.splitlines()
        assert lines[0].split()[-1] == "+" * 20
        assert lines[1].split()[-1] == "+" * 10

    def test_all_zero_profile(self):
        out = profile_bars([0.0, 0.0])
        assert "+" not in out.replace("+0", "")


class TestRenderTimeline:
    from repro.viz import render_timeline  # noqa: F401 (import check)

    def test_empty(self):
        from repro.viz import render_timeline

        assert "empty" in render_timeline([])

    def test_events_render_with_glyphs(self):
        from repro.viz import render_timeline

        tl = [("compute:ps", 0.0, 0.6e-3), ("exchange:5f", 0.6e-3, 0.8e-3), ("gsum", 0.8e-3, 0.81e-3)]
        out = render_timeline(tl, width=40)
        assert "#" in out and "=" in out and "|" in out
        assert "compute:ps" in out and "0.80 ms" in out.splitlines()[0] or "ms" in out

    def test_tiny_events_get_one_column(self):
        from repro.viz import render_timeline

        tl = [("gsum", 0.0, 1e-9), ("compute:ps", 1e-9, 1.0)]
        out = render_timeline(tl, width=30)
        assert out.splitlines()[1].strip().startswith("|")
