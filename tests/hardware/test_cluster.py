"""Tests for Hyades cluster assembly, SMP nodes and reference tables."""

import pytest

from repro.hardware import (
    HyadesCluster,
    HyadesConfig,
    SMPParams,
    VECTOR_MACHINES,
    fig10_reference_rows,
)
from repro.niu.pci import PCIParams


class TestClusterAssembly:
    def test_default_is_sixteen_two_way_smps(self):
        c = HyadesCluster()
        assert c.n_nodes == 16
        assert c.total_cpus == 32
        assert len(c.nodes) == 16

    def test_each_node_has_own_niu_and_pci(self):
        c = HyadesCluster()
        nius = {id(c.niu(i)) for i in range(16)}
        pcis = {id(c.niu(i).pci) for i in range(16)}
        assert len(nius) == 16
        assert len(pcis) == 16

    def test_hardware_cost_under_100k(self):
        cfg = HyadesConfig()
        assert cfg.hardware_cost_usd < 100_000
        # "about evenly divided between the processing nodes and the
        # interconnect"
        nodes = cfg.n_nodes * cfg.node_price_usd
        net = cfg.n_nodes * cfg.interconnect_price_per_node_usd
        assert nodes == pytest.approx(net, rel=0.25)

    def test_non_pow2_node_count_rejected_at_config(self):
        """The fat tree only exists for power-of-two node counts; the
        config boundary rejects others with the named error (still a
        ValueError for old callers)."""
        from repro.network.errors import EndpointCountError

        for bad in (0, 1, 3, 12, 100):
            with pytest.raises(EndpointCountError) as exc:
                HyadesConfig(n_nodes=bad)
            assert exc.value.n_endpoints == bad
            assert "Hyades fat tree" in str(exc.value)
        with pytest.raises(ValueError):
            HyadesConfig(n_nodes=12)

    def test_smaller_cluster_configurable(self):
        c = HyadesCluster(HyadesConfig(n_nodes=4))
        assert c.total_cpus == 8
        assert c.fabric.n == 4


class TestSMPNode:
    def test_global_cpu_ranks(self):
        c = HyadesCluster()
        node = c.node(3)
        assert node.cpu_rank(0) == 6
        assert node.cpu_rank(1) == 7
        with pytest.raises(ValueError):
            node.cpu_rank(2)

    def test_local_combine_adds_about_1us(self):
        # Section 4.2: "local summing operation adds about 1 usec".
        p = SMPParams()
        assert p.smp_gsum_overhead == pytest.approx(1.0e-6)

    def test_pack_cost_at_memcpy_bandwidth(self):
        c = HyadesCluster()
        assert c.node(0).pack_cost(100_000) == pytest.approx(1e-3)

    def test_semaphore_op_advances_clock(self):
        c = HyadesCluster()
        eng = c.engine

        def proc():
            yield from c.node(0).semaphore_op()

        eng.process(proc())
        eng.run()
        assert eng.now == pytest.approx(0.5e-6)


class TestPCIParams:
    def test_section_21_measured_values(self):
        p = PCIParams()
        assert p.mmap_read_latency == pytest.approx(0.93e-6)
        assert p.mmap_write_gap == pytest.approx(0.18e-6)
        assert p.dma_bandwidth >= 120e6

    def test_peak_is_132_mbs(self):
        assert PCIParams().peak_bandwidth == pytest.approx(132e6)


class TestVectorMachineTable:
    def test_fig10_rows_present(self):
        rows = fig10_reference_rows()
        names = {(r.machine, r.processors) for r in rows}
        assert ("Cray Y-MP", 1) in names
        assert ("NEC SX-4", 4) in names
        assert ("Hyades", 16) in names

    def test_sx4_fastest_single_vector_cpu(self):
        singles = [r for r in VECTOR_MACHINES if r.processors == 1]
        best = max(singles, key=lambda r: r.sustained_gflops)
        assert best.machine == "NEC SX-4"

    def test_hyades_16_comparable_to_one_vector_cpu(self):
        rows = {(r.machine, r.processors): r.sustained_gflops for r in fig10_reference_rows()}
        h16 = rows[("Hyades", 16)]
        assert rows[("Cray Y-MP", 1)] <= h16 + 0.1
        assert h16 < rows[("Cray C90", 4)]
