"""Smoke tests: the shipped examples must run clean end to end.

Only the quick examples run here (the longer integrations are exercised
structurally by the gcm test suite); each is executed as a subprocess
exactly the way a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"

QUICK = [
    "quickstart.py",
    "interconnect_study.py",
    "network_microbench.py",
    "ensemble_forecast.py",
    "large_sweep.py",
]


@pytest.mark.parametrize("script", QUICK)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
    assert "Traceback" not in proc.stderr


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for s in scripts:
        text = s.read_text()
        assert text.lstrip().startswith(("#!/usr/bin/env python3", '"""')), s.name
        assert '"""' in text, f"{s.name} lacks a docstring"
        assert "__main__" in text, f"{s.name} is not runnable"


def test_interconnect_study_reaches_paper_verdict():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "interconnect_study.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "network-bound" in proc.stdout  # FE verdict
    assert "compute-bound" in proc.stdout  # Arctic verdict
    assert "306 us" in proc.stdout or "306" in proc.stdout
