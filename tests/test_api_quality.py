"""API quality gates: public-item documentation and import hygiene.

The deliverable contract requires doc comments on every public item;
this test walks the package and enforces it, so the bar cannot silently
erode.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__path__[0])


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


def test_every_module_imports():
    for name in ALL_MODULES:
        importlib.import_module(name)


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_has_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_public_items_documented(name):
    mod = importlib.import_module(name)
    missing = []
    for attr_name in dir(mod):
        if attr_name.startswith("_"):
            continue
        obj = getattr(mod, attr_name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != name:
            continue  # re-export; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(attr_name)
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__module__ != name:
                    continue
                if not (meth.__doc__ and meth.__doc__.strip()):
                    missing.append(f"{attr_name}.{meth_name}")
    assert not missing, f"{name}: undocumented public items: {missing}"


def test_package_exposes_version_independent_api():
    """The documented top-level entry points must exist."""
    from repro.gcm import atmosphere_model, coupled_model, ocean_model  # noqa: F401
    from repro.core import fig12_table, section53_validation  # noqa: F401
    from repro.hardware import HyadesCluster  # noqa: F401
    from repro.parallel import LockstepRuntime, butterfly_global_sum  # noqa: F401


def test_no_module_shadows_stdlib():
    stdlib = {"time", "math", "random", "types", "io", "os", "sys"}
    leaves = {name.rsplit(".", 1)[-1] for name in ALL_MODULES}
    assert not (leaves & stdlib)
