"""Collectives under injected fabric faults: bit-exact or bust.

The 5-seed sweep pattern from ``tests/recover``: every collective, run
through the reliable go-back-N layer over a fabric dropping and
corrupting >= 1% of packets, must finish with results bitwise identical
to the fault-free in-process reference.
"""

import numpy as np
import pytest

from repro.collectives import des_run_schedule
from repro.collectives.schedules import build
from repro.collectives.semantics import run_schedule
from repro.faults import FaultInjector, FaultPlan
from repro.hardware.cluster import HyadesCluster

SEEDS = (11, 23, 31, 47, 59)

#: (op, algorithm, ranks) — n=5 exercises the non-power-of-two folds.
CASES = [
    ("allreduce", "butterfly", 5),
    ("allreduce", "ring", 5),
    ("allreduce", "tree", 5),
    ("allreduce", "reduce_scatter_allgather", 8),
    ("broadcast", "binomial", 5),
    ("allgather", "ring", 5),
    ("reduce_scatter", "ring", 5),
    ("alltoall", "bruck", 5),
    ("barrier", "dissemination", 5),
]


def inputs_for(op, n, seed):
    rng = np.random.default_rng(seed)
    if op == "barrier":
        return [None] * n
    if op == "alltoall":
        return [rng.standard_normal((n, 3)) for _ in range(n)]
    return [rng.standard_normal(3) for _ in range(n)]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("op,alg,n", CASES, ids=lambda c: str(c))
def test_collective_bit_exact_under_faults(op, alg, n, seed):
    plan = FaultPlan(seed=seed, drop_prob=0.01, corrupt_prob=0.005)
    cluster = HyadesCluster()
    inj = FaultInjector(cluster.fabric, plan)
    sch = build(op, alg, n, 24)
    inp = inputs_for(op, n, seed)
    got, elapsed = des_run_schedule(cluster, sch, inp)
    ref = run_schedule(sch, inp)
    assert elapsed > 0
    for g, r in zip(got, ref):
        if op == "barrier":
            assert g is None
        else:
            assert g.tobytes() == r.tobytes(), (op, alg, n, seed)
    assert inj.injected_drops >= 0  # plan attached to the live fabric


def test_sweep_injects_real_faults():
    """At least one sweep case must actually lose packets, or the sweep
    proves nothing."""
    total = 0
    for seed in SEEDS:
        cluster = HyadesCluster()
        inj = FaultInjector(
            cluster.fabric, FaultPlan(seed=seed, drop_prob=0.05)
        )
        sch = build("allreduce", "ring", 5, 24)
        inp = inputs_for("allreduce", 5, seed)
        got, _ = des_run_schedule(cluster, sch, inp)
        ref = run_schedule(sch, inp)
        for g, r in zip(got, ref):
            assert g.tobytes() == r.tobytes()
        total += inj.injected_drops
    assert total > 0


def test_faulty_run_costs_more_virtual_time():
    sch = build("allreduce", "butterfly", 8, 24)
    inp = inputs_for("allreduce", 8, 0)
    _, clean = des_run_schedule(HyadesCluster(), sch, inp)
    cluster = HyadesCluster()
    FaultInjector(cluster.fabric, FaultPlan(seed=23, drop_prob=0.10))
    _, faulty = des_run_schedule(cluster, sch, inp)
    assert faulty > clean
