"""Packet-level DES execution: model cross-validation and the data path."""

import numpy as np
import pytest

from repro.collectives import Autotuner, des_run_schedule, des_time_schedule
from repro.collectives.schedules import build, candidates
from repro.collectives.semantics import reference_result, run_schedule
from repro.hardware.cluster import HyadesCluster
from repro.obs import trace


@pytest.fixture(autouse=True)
def _no_global_tracer():
    trace.stop()
    yield
    trace.stop()


class TestCrossValidation:
    """The acceptance gate: analytic cost within 10% of the DES at N=16."""

    @pytest.mark.parametrize("alg", ["butterfly", "tree", "ring",
                                     "reduce_scatter_allgather"])
    @pytest.mark.parametrize("nbytes", [8, 4096])
    def test_allreduce_model_within_10pct(self, alg, nbytes):
        sch = build("allreduce", alg, 16, nbytes)
        plan_cost = Autotuner().model
        from repro.collectives import schedule_cost

        predicted = schedule_cost(sch, plan_cost)
        des = des_time_schedule(HyadesCluster(), sch)
        assert predicted == pytest.approx(des, rel=0.10)

    @pytest.mark.parametrize("op", ["broadcast", "allgather", "barrier"])
    def test_other_ops_model_within_10pct(self, op):
        from repro.collectives import schedule_cost

        for alg in candidates(op, 16):
            sch = build(op, alg, 16, 64)
            predicted = schedule_cost(sch)
            des = des_time_schedule(HyadesCluster(), sch)
            assert predicted == pytest.approx(des, rel=0.10), (op, alg)

    def test_tuner_crossvalidate_reports_error(self):
        tuner = Autotuner()
        cv = tuner.crossvalidate(tuner.plan("allreduce", 16, 8))
        assert cv["rel_err"] <= 0.10
        assert cv["des_s"] > 0 and cv["predicted_s"] > 0


class TestTimingPath:
    def test_gsum_matches_paper_measured(self):
        des = des_time_schedule(
            HyadesCluster(), build("allreduce", "butterfly", 16, 8)
        )
        assert des == pytest.approx(18.2e-6, rel=0.10)

    def test_vi_path_engaged_for_large_payloads(self):
        small = des_time_schedule(
            HyadesCluster(), build("allreduce", "butterfly", 4, 8)
        )
        large = des_time_schedule(
            HyadesCluster(), build("allreduce", "butterfly", 4, 65536)
        )
        assert large > small * 10

    def test_emits_trace_spans(self):
        with trace.tracing() as tr:
            des_time_schedule(
                HyadesCluster(), build("allreduce", "butterfly", 4, 8)
            )
        spans = [e for e in tr.events if e.get("cat") == "collectives"]
        assert spans, "timing executor emitted no collective spans"

    def test_cluster_too_small_rejected(self):
        from repro.hardware.cluster import HyadesConfig

        with pytest.raises(ValueError, match="nodes"):
            des_time_schedule(
                HyadesCluster(HyadesConfig(n_nodes=4)),
                build("allreduce", "butterfly", 8, 8),
            )


class TestDataPath:
    def test_clean_fabric_bit_exact_vs_in_process(self):
        n = 5
        rng = np.random.default_rng(0)
        inp = [rng.standard_normal(4) for _ in range(n)]
        sch = build("allreduce", "ring", n, 32)
        got, elapsed = des_run_schedule(HyadesCluster(), sch, inp)
        ref = run_schedule(sch, inp)
        assert elapsed > 0
        for g, r in zip(got, ref):
            assert g.tobytes() == r.tobytes()

    def test_alltoall_data_path(self):
        n = 4
        rng = np.random.default_rng(1)
        inp = [rng.standard_normal((n, 2)) for _ in range(n)]
        got, _ = des_run_schedule(
            HyadesCluster(), build("alltoall", "bruck", n, 16), inp
        )
        ref = reference_result("alltoall", inp, n)
        for g, r in zip(got, ref):
            np.testing.assert_array_equal(g, r)

    def test_barrier_data_path_completes(self):
        res, elapsed = des_run_schedule(
            HyadesCluster(), build("barrier", "dissemination", 6, 0)
        )
        assert res == [None] * 6
        assert elapsed > 0

    def test_guards(self):
        from repro.hardware.cluster import HyadesConfig

        with pytest.raises(ValueError, match="64 ranks"):
            des_run_schedule(
                HyadesCluster(HyadesConfig(n_nodes=128)),
                build("barrier", "dissemination", 65, 0),
            )
