"""Bit-exactness of the schedule data engine against canonical results."""

import numpy as np
import pytest

from repro.collectives.schedules import OPS, build, candidates
from repro.collectives.semantics import (
    ItemStore,
    reference_result,
    run_schedule,
)

NS = (2, 3, 5, 8, 13, 16)


def inputs_for(op, n, rng, elems=4):
    if op == "barrier":
        return [None] * n
    if op == "alltoall":
        return [rng.standard_normal((n, elems)) for _ in range(n)]
    return [rng.standard_normal(elems) for _ in range(n)]


def cases():
    for op in OPS:
        for n in NS:
            for alg in candidates(op, n):
                yield op, alg, n


@pytest.mark.parametrize("op,alg,n", list(cases()))
def test_every_algorithm_bit_exact_vs_reference(op, alg, n):
    rng = np.random.default_rng(hash((op, alg, n)) % 2**32)
    inp = inputs_for(op, n, rng)
    got = run_schedule(build(op, alg, n, 4 * 8), inp)
    ref = reference_result(op, inp, n)
    for g, r in zip(got, ref):
        if op == "barrier":
            assert g is None
        else:
            np.testing.assert_array_equal(g, r)


@pytest.mark.parametrize("n", NS)
def test_allreduce_identical_bits_across_algorithms(n):
    """The determinism headline: every allreduce algorithm — including
    the non-power-of-two fold paths — produces the same float64 bits."""
    rng = np.random.default_rng(n)
    inp = [rng.standard_normal(6) for _ in range(n)]
    outs = {
        alg: run_schedule(build("allreduce", alg, n, 48), inp)
        for alg in candidates("allreduce", n)
    }
    baseline = next(iter(outs.values()))
    for alg, res in outs.items():
        for r in range(n):
            assert res[r].tobytes() == baseline[r].tobytes(), (alg, r)


def test_scalar_inputs_accepted():
    got = run_schedule(build("allreduce", "butterfly", 4, 8), [1.0, 2.0, 3.0, 4.0])
    for g in got:
        assert g.shape == (1,)
        assert g[0] == pytest.approx(10.0)


def test_reduce_scatter_chunks_partition_the_reduction():
    n = 5
    rng = np.random.default_rng(3)
    inp = [rng.standard_normal(10) for _ in range(n)]
    got = run_schedule(build("reduce_scatter", "ring", n, 80), inp)
    ref = reference_result("allreduce", inp, n)[0]
    np.testing.assert_array_equal(np.concatenate(got), ref)


def test_absorb_tolerates_duplicate_delivery():
    """Retransmitted (duplicate) messages must be no-ops — the reliable
    layer can replay a frame after a lost ACK."""
    sch = build("allgather", "ring", 3, 8)
    store = ItemStore(sch, 0, np.array([7.0]))
    peer = ItemStore(sch, 1, np.array([9.0]))
    frame = peer.serialize([("block", 1)])
    store.absorb(frame)
    store.absorb(frame)  # duplicate
    assert store.items[("block", 1)][0] == 9.0


def test_alltoall_flat_vector_layout():
    n = 3
    flat = [np.arange(n * 2, dtype=float) + 10 * r for r in range(n)]
    got = run_schedule(build("alltoall", "bruck", n, 16), flat)
    ref = reference_result("alltoall", flat, n)
    for g, r in zip(got, ref):
        np.testing.assert_array_equal(g, r)
