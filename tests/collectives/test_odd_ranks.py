"""Odd rank counts (N=3, 5, 7): the autotuner must still pick a valid
plan and the data engine must stay bit-exact.

Ensemble workers and degraded clusters routinely leave an odd number of
ranks alive; the power-of-two-only algorithms must drop out of the
candidate set silently while the fold-based paths keep the global sum
bit-identical to the canonical reduction order.
"""

import numpy as np
import pytest

from repro.collectives import Autotuner
from repro.collectives.schedules import OPS, build, candidates
from repro.collectives.semantics import reference_result, run_schedule
from repro.parallel.globalsum import canonical_fold_reduce

ODD_NS = (3, 5, 7)


@pytest.mark.parametrize("n", ODD_NS)
@pytest.mark.parametrize("op", OPS)
def test_tuner_picks_valid_plan_at_odd_n(op, n):
    tuner = Autotuner()
    for priority in ("high", "low"):
        plan = tuner.plan(op, n, 64, priority=priority)
        assert plan.algorithm in candidates(op, n)
        plan.schedule.validate()
        assert plan.n == n and plan.predicted_s > 0.0
        # the plan's cost table covers exactly the legal candidates
        assert set(plan.costs) == set(candidates(op, n))


@pytest.mark.parametrize("n", ODD_NS)
def test_tuned_allreduce_bit_exact_at_odd_n(n):
    tuner = Autotuner()
    rng = np.random.default_rng(100 + n)
    inp = [rng.standard_normal(8) for _ in range(n)]
    want = np.atleast_1d(canonical_fold_reduce(inp))
    plan = tuner.plan("allreduce", n, 8 * 8)
    got = run_schedule(plan.schedule, inp)
    for rank in range(n):
        assert got[rank].tobytes() == want.tobytes(), (plan.algorithm, rank)


@pytest.mark.parametrize("n", ODD_NS)
def test_every_allreduce_candidate_agrees_at_odd_n(n):
    """All algorithms legal at odd N produce identical float64 bits —
    no power-of-two fold path may reorder the reduction."""
    rng = np.random.default_rng(200 + n)
    inp = [rng.standard_normal(5) for _ in range(n)]
    ref = reference_result("allreduce", inp, n)
    for alg in candidates("allreduce", n):
        got = run_schedule(build("allreduce", alg, n, 5 * 8), inp)
        for rank in range(n):
            np.testing.assert_array_equal(got[rank], ref[rank], err_msg=alg)
            assert got[rank].tobytes() == ref[rank].tobytes(), (alg, rank)


@pytest.mark.parametrize("n", ODD_NS)
def test_pow2_only_algorithms_absent_at_odd_n(n):
    for op in OPS:
        for alg, builder in candidates(op, n).items():
            sch = builder(n, 64)
            sch.validate()
            assert sch.n == n
