"""Structural and data-flow validation of every collective schedule."""

import math

import pytest

from repro.collectives.schedules import (
    BUILDERS,
    ITEMS_EXACT_MAX_N,
    OPS,
    POW2_ONLY,
    Schedule,
    build,
    candidates,
)

NS = (2, 3, 4, 5, 8, 12, 16)


def all_cases():
    for op in OPS:
        for n in NS:
            for alg in candidates(op, n):
                yield op, alg, n


@pytest.mark.parametrize("op,alg,n", list(all_cases()))
def test_every_candidate_validates(op, alg, n):
    sch = build(op, alg, n, 64)
    sch.validate()
    assert sch.op == op and sch.algorithm == alg and sch.n == n


@pytest.mark.parametrize("op,alg", sorted(POW2_ONLY))
def test_pow2_only_algorithms_reject_other_counts(op, alg):
    with pytest.raises(ValueError, match="power-of-two"):
        build(op, alg, 6, 64)
    # ... and are simply absent from the candidate set
    assert alg not in candidates(op, 6)
    assert alg in candidates(op, 8)


def test_unknown_op_and_algorithm_rejected():
    with pytest.raises(ValueError):
        build("scan", "butterfly", 8, 8)
    with pytest.raises(ValueError):
        build("allreduce", "hypercube", 8, 8)


class TestShapes:
    def test_butterfly_rounds_and_messages(self):
        sch = build("allreduce", "butterfly", 16, 8)
        assert sch.n_rounds == 4
        assert sch.total_messages == 16 * 4

    def test_butterfly_non_pow2_adds_fold_rounds(self):
        sch = build("allreduce", "butterfly", 5, 8)
        # fold-in + log2(4) butterfly rounds + fold-out
        assert sch.n_rounds == 4
        assert sch.total_messages == 4 * 2 + 2 * 1

    def test_ring_allreduce_is_2n_minus_2_rounds(self):
        sch = build("allreduce", "ring", 7, 7 * 8)
        assert sch.n_rounds == 2 * 6
        assert sch.total_messages == 2 * 6 * 7

    def test_dissemination_barrier_round_count(self):
        for n in NS:
            sch = build("barrier", "dissemination", n, 0)
            assert sch.n_rounds == math.ceil(math.log2(n))

    def test_alltoall_bruck_logarithmic(self):
        sch = build("alltoall", "bruck", 13, 8)
        assert sch.n_rounds == math.ceil(math.log2(13))

    def test_total_bytes_counts_wire_minimum(self):
        sch = build("barrier", "dissemination", 4, 0)
        # dataless sends still occupy a minimum wire packet
        assert sch.total_bytes == sch.total_messages * 8


class TestElision:
    def test_small_rings_carry_exact_items(self):
        sch = build("allreduce", "ring", ITEMS_EXACT_MAX_N, 8)
        assert not sch.items_elided
        assert all(s.items for rnd in sch.rounds for s in rnd)

    def test_large_rings_are_timing_only(self):
        sch = build("allreduce", "ring", ITEMS_EXACT_MAX_N + 1, 8)
        assert sch.items_elided
        sch.validate()  # structure-only check still runs

    def test_large_ring_refused_by_data_engine(self):
        from repro.collectives.semantics import run_schedule

        with pytest.raises(ValueError, match="timing-only"):
            run_schedule(build("allreduce", "ring", 128, 8))


def test_schedule_validate_catches_bad_dataflow():
    good = build("allreduce", "tree", 4, 8)
    # Drop the first round: later sends ship items never received.
    bad = Schedule(
        good.op, good.algorithm, good.n, good.nbytes, good.chunking,
        good.rounds[1:],
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_registry_covers_every_op():
    assert set(BUILDERS) == set(OPS)
    for op, algs in BUILDERS.items():
        assert algs, f"no algorithms registered for {op}"


class TestElisionEquivalence:
    """Elided (timing-only) schedules must price identically to the
    exact item-carrying builds — same rounds, same src/dst, same bytes."""

    @pytest.mark.parametrize("nbytes", [8, 1000, 65536])
    @pytest.mark.parametrize("n", [8, 32, 64])
    def test_rabenseifner_sizes_match_exact(self, monkeypatch, n, nbytes):
        import repro.collectives.schedules as schedules

        exact = build("allreduce", "reduce_scatter_allgather", n, nbytes)
        assert not exact.items_elided
        monkeypatch.setattr(schedules, "ITEMS_EXACT_MAX_N", n - 1)
        elided = build("allreduce", "reduce_scatter_allgather", n, nbytes)
        assert elided.items_elided
        assert len(elided.rounds) == len(exact.rounds)
        for re, rx in zip(elided.rounds, exact.rounds):
            assert [(s.src, s.dst, s.nbytes) for s in re] == [
                (s.src, s.dst, s.nbytes) for s in rx
            ]

    def test_chunk_range_matches_sum(self):
        from repro.collectives.schedules import chunk_nbytes, chunk_range_nbytes

        for nbytes in (8, 100, 65536):
            for n in (4, 8, 64):
                for lo in range(0, n, 3):
                    for hi in range(lo, n + 1, 5):
                        assert chunk_range_nbytes(nbytes, n, lo, hi) == sum(
                            chunk_nbytes(nbytes, n, c) for c in range(lo, hi)
                        )


def test_tuner_drops_quadratic_algorithms_at_large_n():
    """Above DENSE_SCHEDULE_MAX_N the tuner must not even build the
    O(N^2)-message candidates (their schedules alone are huge)."""
    from repro.collectives.tuner import (
        Autotuner,
        DENSE_SCHEDULE_MAX_N,
        QUADRATIC_ALGORITHMS,
    )

    tuner = Autotuner()
    small = tuner.plan("allreduce", DENSE_SCHEDULE_MAX_N, 8)
    assert QUADRATIC_ALGORITHMS & set(small.costs)
    large = tuner.plan("allreduce", 2 * DENSE_SCHEDULE_MAX_N, 8)
    assert not (QUADRATIC_ALGORITHMS & set(large.costs))
    assert large.algorithm in large.costs
