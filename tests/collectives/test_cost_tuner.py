"""Analytic cost model + autotuner: calibration, crossover, caching."""

import pytest

from repro.collectives import Autotuner, cost_table, schedule_cost
from repro.collectives.schedules import build
from repro.core.pfpp import best_collectives_table
from repro.network.costmodel import ARCTIC_GSUM_MEASURED
from repro.network.packet import Priority
from repro.parallel.runtime import LockstepRuntime
from repro.parallel.tiling import Decomposition


class TestCalibration:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_butterfly_gsum_within_10pct_of_paper(self, n):
        """The tuned doubleword allreduce must reproduce the measured
        Fig. 8 global-sum latencies (4.0/8.3/12.8/18.2 us)."""
        t = Autotuner().allreduce_time(n, 8)
        assert t == pytest.approx(ARCTIC_GSUM_MEASURED[n], rel=0.10)

    def test_butterfly_cost_is_422ns_rounds(self):
        # os(8) + GSUM_SW_COST + or(8) = 0.36 + 2.00 + 1.86 us per round
        t = schedule_cost(build("allreduce", "butterfly", 16, 8))
        assert t == pytest.approx(4 * 4.22e-6, rel=1e-6)

    def test_barrier_priced_like_dataless_gsum(self):
        t = Autotuner().barrier_time(16)
        assert t == pytest.approx(ARCTIC_GSUM_MEASURED[16], rel=0.10)

    def test_trivial_sizes(self):
        tuner = Autotuner()
        assert tuner.allreduce_time(1) == 0.0
        assert tuner.barrier_time(1) == 0.0


class TestSelection:
    def test_small_messages_pick_butterfly(self):
        plan = Autotuner().plan("allreduce", 16, 8)
        assert plan.algorithm == "butterfly"

    def test_large_messages_switch_to_reduce_scatter_allgather(self):
        """The tuner must demonstrably switch algorithms with size."""
        tuner = Autotuner()
        assert tuner.plan("allreduce", 16, 8).algorithm == "butterfly"
        big = tuner.plan("allreduce", 16, 65536)
        assert big.algorithm == "reduce_scatter_allgather"
        assert big.costs["reduce_scatter_allgather"] < big.costs["butterfly"]

    def test_crossover_visible_in_cost_table(self):
        sizes = [8, 65536]
        table = cost_table("allreduce", 16, sizes)
        small = min(table, key=lambda a: table[a][0])
        large = min(table, key=lambda a: table[a][1])
        assert small != large

    def test_non_pow2_excludes_rsag(self):
        plan = Autotuner().plan("allreduce", 12, 65536)
        assert "reduce_scatter_allgather" not in plan.costs
        assert plan.algorithm in plan.costs

    def test_high_priority_minimizes_rounds(self):
        tuner = Autotuner()
        hi = tuner.plan("allreduce", 16, 262144, priority=Priority.HIGH)
        lo = tuner.plan("allreduce", 16, 262144, priority="low")
        assert hi.n_rounds <= lo.n_rounds
        assert lo.predicted_s <= hi.predicted_s

    def test_priority_accepts_strings(self):
        plan = Autotuner().plan("barrier", 8, priority="high")
        assert plan.priority is Priority.HIGH
        with pytest.raises(ValueError):
            Autotuner().plan("barrier", 8, priority="urgent")


class TestCaching:
    def test_plans_are_cached_per_key(self):
        tuner = Autotuner()
        a = tuner.plan("allreduce", 8, 8)
        b = tuner.plan("allreduce", 8, 8)
        assert a is b
        tuner.plan("allreduce", 8, 8, priority="high")
        info = tuner.cache_info()
        assert info["hits"] == 1 and info["misses"] == 2 and info["size"] == 2


class TestRuntimeWiring:
    def test_runtime_charges_tuned_gsum(self):
        decomp = Decomposition(16, 16, 4, 4)
        tuned = LockstepRuntime(decomp, tuner=Autotuner())
        plain = LockstepRuntime(decomp)
        assert tuned.global_sum([1.0] * 16) == plain.global_sum([1.0] * 16)
        # both charge a 16-way gsum within 10% of the measured latency
        for rt in (tuned, plain):
            assert rt.stats[0].gsum_time == pytest.approx(
                ARCTIC_GSUM_MEASURED[16], rel=0.10
            )

    def test_runtime_barrier_uses_tuner(self):
        decomp = Decomposition(16, 16, 4, 4)
        rt = LockstepRuntime(decomp, tuner=Autotuner())
        rt.barrier()
        assert rt.elapsed == pytest.approx(Autotuner().barrier_time(16))


class TestBestCollectivesPfpp:
    def test_rows_cover_requested_sizes(self):
        rows = best_collectives_table()
        assert [r.n_nodes for r in rows] == [16, 64, 256]
        for r in rows:
            assert r.tgsum > 0 and r.pfpp_ps > 0 and r.pfpp_ds > 0
            assert r.gsum_algorithm in (
                "butterfly", "tree", "ring", "reduce_scatter_allgather"
            )

    def test_gsum_grows_logarithmically(self):
        rows = best_collectives_table()
        t = {r.n_nodes: r.tgsum for r in rows}
        # +2 rounds per 4x nodes at doubleword sizes
        assert t[64] - t[16] == pytest.approx(t[256] - t[64], rel=0.05)

    def test_unknown_node_count_rejected(self):
        with pytest.raises(ValueError, match="process grid"):
            best_collectives_table(n_values=(48,))


class TestTopologyAwareCosts:
    """schedule_cost(topology=...) prices legs with real hop distances."""

    def test_topology_none_unchanged(self):
        from repro.collectives.cost import schedule_cost
        from repro.collectives.schedules import build

        sch = build("allreduce", "butterfly", 16, 8)
        assert schedule_cost(sch) == schedule_cost(sch, topology=None)

    def test_tuner_uses_topology_model(self):
        from repro.collectives.tuner import Autotuner
        from repro.network.topology import make_topology

        topo = make_topology("torus2d", 16)
        tuner = Autotuner(topology=topo)
        assert tuner.model.name == topo.cost_model().name
        plan = tuner.plan("allreduce", 16, 8)
        assert plan.predicted_s > 0

    def test_schedule_larger_than_machine_rejected(self):
        from repro.collectives.cost import schedule_cost
        from repro.collectives.schedules import build
        from repro.network.errors import TopologyError
        from repro.network.topology import make_topology

        sch = build("allreduce", "butterfly", 32, 8)
        with pytest.raises(TopologyError):
            schedule_cost(sch, topology=make_topology("fattree", 16))

    def test_distance_matters_on_grid(self):
        """The same schedule must cost more on a machine where its legs
        span more hops: price one far-pair send on a torus vs charging
        the fat tree's flat latency."""
        from repro.collectives.cost import schedule_cost
        from repro.collectives.schedules import build
        from repro.network.topology import make_topology

        sch = build("allreduce", "butterfly", 64, 65536)
        torus = make_topology("torus2d", 64)
        xbar = make_topology("hypercrossbar", 64)
        # 300 MB/s crossbar links vs 25 MB/s serial torus links at bulk
        # payloads: the hardware difference must dominate
        assert schedule_cost(sch, topology=torus) > schedule_cost(
            sch, topology=xbar
        )
