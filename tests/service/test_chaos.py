"""Chaos harness: determinism of the campaign pieces, plus one small
real campaign (subprocess service under seeded SIGKILL fire)."""

import pytest

from repro.service import ChaosConfig, ChaosReport, build_ensemble, run_chaos
from repro.service.chaos import expected_outcomes


class TestEnsembleConstruction:
    def test_build_is_seed_deterministic(self):
        a = build_ensemble(20, seed=7)
        b = build_ensemble(20, seed=7)
        assert [s.job_id for s in a] == [s.job_id for s in b]
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
        assert [s.job_id for s in build_ensemble(20, seed=8)] != [
            s.job_id for s in a
        ]

    def test_mix_has_pathological_members(self):
        specs = build_ensemble(24, seed=0)
        kinds = [s.kind for s in specs]
        assert len(specs) == 24
        assert kinds.count("flaky") == 2
        assert kinds.count("fail") == 1
        assert kinds.count("wedge") == 1
        assert kinds.count("ocean") == 20

    def test_expected_outcomes_cover_every_member(self):
        specs = build_ensemble(8, seed=1)
        expected = expected_outcomes(specs)
        assert set(expected) == {s.job_id for s in specs}
        for spec in specs:
            status, digest = expected[spec.job_id]
            if spec.kind in ("fail", "wedge"):
                assert status == "quarantined" and digest is None
            else:
                assert status == "completed" and digest


class TestReportVerdict:
    def test_ok_requires_full_accounting(self):
        good = ChaosReport(n_jobs=3, completed=2, quarantined=1)
        assert good.ok
        assert ChaosReport(n_jobs=0).ok is False
        assert ChaosReport(n_jobs=3, completed=2, quarantined=0).ok is False
        assert ChaosReport(
            n_jobs=3, completed=2, quarantined=1, lost=["x"]
        ).ok is False
        assert ChaosReport(
            n_jobs=3, completed=2, quarantined=1, mismatched=["x"]
        ).ok is False

    def test_render_names_the_failures(self):
        report = ChaosReport(
            n_jobs=2, completed=1, quarantined=0, lost=["gone"],
            mismatched=["bad"],
        )
        text = report.render()
        assert "FAIL" in text and "gone" in text and "bad" in text


@pytest.mark.slow
def test_small_chaos_campaign_passes(tmp_path):
    """The acceptance property at reduced scale: SIGKILL workers and the
    service itself; every job still completes bit-exact or quarantines."""
    config = ChaosConfig(
        seed=3,
        n_jobs=7,  # < 8: no wedge member, keeps the campaign quick
        workers=2,
        max_wall_s=60.0,
        kill_worker_prob=0.5,
        service_kill_period_s=1.5,
        max_service_kills=1,
        calm_after_fraction=0.3,
        heartbeat_timeout_s=1.0,
        deadline_s=15.0,
        max_attempts=6,
    )
    report = run_chaos(tmp_path, config)
    assert report.ok, report.render()
    assert report.completed + report.quarantined == 7
    assert report.worker_kills + report.service_kills >= 1, (
        "campaign must actually have killed something"
    )
    assert report.journal_records > 0
