"""Journal crash-safety: CRC framing, torn tails, atomic repair."""

import json
import struct
import zlib

import pytest

from repro.service import Journal, JournalError, JournalWarning

RECORDS = [
    {"type": "submit", "spec": {"kind": "sleep", "params": {}, "name": "a"}},
    {"type": "start", "job_id": "a", "attempt": 1},
    {"type": "complete", "job_id": "a", "digest": "beef"},
]


def write_records(path, records=RECORDS):
    with Journal(path) as journal:
        for record in records:
            journal.append(record)
    return path


class TestRoundTrip:
    def test_append_replay_round_trip(self, tmp_path):
        path = write_records(tmp_path / "j.bin")
        assert Journal(path).replay() == RECORDS

    def test_empty_and_missing_files_replay_clean(self, tmp_path):
        assert Journal(tmp_path / "absent.bin").replay() == []
        (tmp_path / "empty.bin").touch()
        assert Journal(tmp_path / "empty.bin").replay() == []

    def test_oversize_record_rejected(self, tmp_path):
        with Journal(tmp_path / "j.bin") as journal:
            with pytest.raises(JournalError, match="frame cap"):
                journal.append({"blob": "x" * (17 * 1024 * 1024)})


class TestTornTail:
    def tear(self, path, keep_extra_bytes):
        """Append a partial frame, as a SIGKILL mid-write would."""
        payload = json.dumps({"type": "start", "job_id": "torn"}).encode()
        frame = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        with open(path, "ab") as fh:
            fh.write(frame[:keep_extra_bytes])

    @pytest.mark.parametrize("keep", [1, 4, 8, 12, 20])
    def test_torn_tail_keeps_good_prefix(self, tmp_path, keep):
        path = write_records(tmp_path / "j.bin")
        self.tear(path, keep)
        with pytest.warns(JournalWarning):
            assert Journal(path).replay() == RECORDS

    def test_crc_mismatch_stops_replay(self, tmp_path):
        path = write_records(tmp_path / "j.bin")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a bit in the last payload
        path.write_bytes(bytes(blob))
        with pytest.warns(JournalWarning, match="CRC mismatch"):
            assert Journal(path).replay() == RECORDS[:-1]

    def test_recover_truncates_atomically(self, tmp_path):
        path = write_records(tmp_path / "j.bin")
        good_size = path.stat().st_size
        self.tear(path, 7)
        journal = Journal(path)
        with pytest.warns(JournalWarning):
            assert journal.recover() is True
        assert path.stat().st_size == good_size
        assert journal.recover() is False  # already clean: no-op, no warning
        assert journal.replay() == RECORDS

    def test_append_after_recover_extends_cleanly(self, tmp_path):
        path = write_records(tmp_path / "j.bin")
        self.tear(path, 3)
        extra = {"type": "quarantine", "job_id": "a", "reason": "r"}
        with pytest.warns(JournalWarning):
            with Journal(path) as journal:  # open() runs recover()
                journal.append(extra)
        assert Journal(path).replay() == RECORDS + [extra]

    def test_absurd_length_header_is_damage_not_allocation(self, tmp_path):
        path = write_records(tmp_path / "j.bin")
        with open(path, "ab") as fh:
            fh.write(struct.pack(">II", 2**31, 0))
        with pytest.warns(JournalWarning, match="absurd frame length"):
            assert Journal(path).replay() == RECORDS


def test_compact_rewrites_exactly(tmp_path):
    path = write_records(tmp_path / "j.bin")
    journal = Journal(path)
    journal.compact(RECORDS[:1])
    assert journal.replay() == RECORDS[:1]
