"""End-to-end service behavior: spool ingest, drain, startup recovery,
checkpoint resume, status schema."""

import json

import pytest

from repro.obs.schema import validate_service_summary
from repro.service import (
    EnsembleService,
    JobSpec,
    Journal,
    JobQueue,
    ServiceClient,
    ServiceConfig,
    SupervisorConfig,
    execute_job,
)
from repro.service.api import JOURNAL_NAME
from repro.service.jobs import JobStatus
from repro.service.worker import RESULT_NAME, write_json_atomic


def fast_config(**kw):
    return ServiceConfig(
        supervisor=SupervisorConfig(
            max_workers=2, backoff_base_s=0.01, backoff_cap_s=0.05, **kw
        )
    )


OCEAN_PARAMS = {
    "nx": 12, "ny": 8, "nz": 3, "dt": 1200.0, "steps": 6,
    "perturb_seed": 3, "perturb_amp": 0.01, "checkpoint_every": 2,
}


class TestDrain:
    def test_spooled_jobs_run_to_completion(self, tmp_path):
        client = ServiceClient(tmp_path)
        ids = client.submit_many(
            [
                JobSpec(kind="sleep", name=f"s{i}", params={"sleep_s": 0.02})
                for i in range(5)
            ]
        )
        service = EnsembleService(tmp_path, fast_config())
        service.startup()
        summary = service.serve(drain=True, max_wall_s=60.0)
        assert summary["completed"] == 5
        assert not list(client.spool.glob("*.json"))  # spool fully ingested
        states = client.wait(ids, timeout_s=5.0)
        assert all(s["status"] == "completed" for s in states.values())

    def test_submission_needs_no_running_service(self, tmp_path):
        client = ServiceClient(tmp_path)
        job_id = client.submit(JobSpec(kind="sleep", name="solo", params={}))
        assert (client.spool / f"{job_id}.json").exists()
        assert client.status() == {}  # no journal yet, no exception

    def test_unreadable_spool_file_is_rejected_not_fatal(self, tmp_path):
        client = ServiceClient(tmp_path)
        client.submit(JobSpec(kind="sleep", name="good", params={}))
        (client.spool / "garbage.json").write_text("{nope")
        service = EnsembleService(tmp_path, fast_config())
        service.startup()
        summary = service.serve(drain=True, max_wall_s=30.0)
        assert summary["completed"] == 1
        assert (client.spool / "garbage.rejected").exists()


class TestStartupRecovery:
    def test_running_jobs_requeued_without_burning_attempt(self, tmp_path):
        journal = Journal(tmp_path / JOURNAL_NAME).open()
        queue = JobQueue(journal)
        queue.replay()
        queue.submit(JobSpec(kind="sleep", name="zombie", params={}))
        queue.mark_started("zombie", 1)  # ...and the service dies here
        journal.close()

        service = EnsembleService(tmp_path, fast_config())
        found = service.startup()
        assert found["requeued"] == 1
        state = service.queue.jobs["zombie"]
        assert state.status is JobStatus.PENDING
        assert state.attempts == 1  # restart did not count as a failure
        assert service.metrics.restarts == 1
        service.shutdown()

    def test_orphan_result_adopted_as_completion(self, tmp_path):
        journal = Journal(tmp_path / JOURNAL_NAME).open()
        queue = JobQueue(journal)
        queue.replay()
        queue.submit(JobSpec(kind="sleep", name="done-but-torn", params={}))
        queue.mark_started("done-but-torn", 1)
        journal.close()
        # the worker finished and wrote result.json, but the COMPLETE
        # record was lost with the killed service
        job_dir = tmp_path / "jobs" / "done-but-torn"
        job_dir.mkdir(parents=True)
        write_json_atomic(
            job_dir / RESULT_NAME,
            {"job_id": "done-but-torn", "digest": "adopt-me", "attempt": 1},
        )
        service = EnsembleService(tmp_path, fast_config())
        found = service.startup()
        assert found["completions_adopted"] == 1
        state = service.queue.jobs["done-but-torn"]
        assert state.status is JobStatus.COMPLETED
        assert state.digest == "adopt-me"
        service.shutdown()

    def test_orphan_pid_files_cleared(self, tmp_path):
        job_dir = tmp_path / "jobs" / "ghost"
        job_dir.mkdir(parents=True)
        (job_dir / "worker.pid").write_text("999999999")  # long dead
        service = EnsembleService(tmp_path, fast_config())
        service.startup()
        assert not (job_dir / "worker.pid").exists()
        service.shutdown()


class TestBitExactness:
    def test_ocean_digest_independent_of_execution_path(self, tmp_path):
        spec = JobSpec(kind="ocean", name="m0", params=OCEAN_PARAMS)
        reference = execute_job(spec, job_dir=None)  # undisturbed, no ckpt
        (tmp_path / "wk").mkdir()
        via_worker = execute_job(spec, job_dir=tmp_path / "wk")
        assert via_worker["digest"] == reference["digest"]

    def test_resume_from_checkpoint_is_bit_exact(self, tmp_path):
        params = dict(OCEAN_PARAMS, steps=8)
        reference = execute_job(
            JobSpec(kind="ocean", name="m1", params=params), job_dir=None
        )
        # first attempt "dies" after 4 steps, leaving a committed shard
        # set at step 2 and step 4... simulated by a shorter run that
        # checkpoints on the same schedule into the same job_dir
        job_dir = tmp_path / "job"
        job_dir.mkdir()
        half = execute_job(
            JobSpec(kind="ocean", name="m1", params=dict(params, steps=5)),
            job_dir=job_dir,
        )
        assert half["steps"] == 5  # checkpoints committed at steps 2 and 4
        retry = execute_job(
            JobSpec(kind="ocean", name="m1", params=params), job_dir=job_dir
        )
        assert retry["resumed_from_step"] == 4
        assert retry["steps"] == 8
        assert retry["digest"] == reference["digest"]


class TestStatusRecord:
    def test_status_json_validates_against_schema(self, tmp_path):
        client = ServiceClient(tmp_path)
        client.submit(JobSpec(kind="sleep", name="s", params={}))
        service = EnsembleService(tmp_path, fast_config())
        service.startup()
        service.serve(drain=True, max_wall_s=30.0)
        record = json.loads((tmp_path / "status.json").read_text())
        assert validate_service_summary(record) == []
        assert record["completed"] == 1
        assert client.service_summary() == record

    def test_summary_rejects_malformed_record(self):
        assert validate_service_summary({"kind": "service_summary"}) != []
