"""Supervisor behavior with real forked workers: reap, wedge-kill,
deadline, retry/backoff, quarantine."""

import time

import pytest

from repro.service import (
    JobQueue,
    JobSpec,
    Journal,
    ServiceMetrics,
    Supervisor,
    SupervisorConfig,
    backoff_delay,
)
from repro.service.jobs import JobStatus


def make_supervisor(tmp_path, **cfg_kw):
    journal = Journal(tmp_path / "journal.bin").open()
    queue = JobQueue(journal)
    queue.replay()
    config = SupervisorConfig(
        max_workers=2,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        **cfg_kw,
    )
    return Supervisor(queue, tmp_path / "jobs", config, ServiceMetrics()), queue


def drive(supervisor, queue, job_id, timeout_s=30.0):
    """Spawn/poll until the job is terminal; returns the final state."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        state = queue.jobs[job_id]
        if state.terminal:
            return state
        if state.status is JobStatus.PENDING and supervisor.free_slots():
            ready = queue.next_ready()
            if ready is not None and ready.job_id == job_id:
                supervisor.spawn(ready)
        supervisor.poll()
        time.sleep(0.02)
    raise AssertionError(f"{job_id} not terminal within {timeout_s}s")


class TestBackoff:
    def test_deterministic_and_capped(self):
        cfg = SupervisorConfig(backoff_base_s=0.1, backoff_cap_s=2.0,
                               backoff_jitter=0.25)
        d1 = backoff_delay("job-x", 3, cfg)
        assert d1 == backoff_delay("job-x", 3, cfg)  # reproducible
        assert d1 != backoff_delay("job-y", 3, cfg)  # jitter spreads jobs
        assert 0.4 <= d1 <= 0.4 * 1.25
        # far past the cap: bounded by cap * (1 + jitter)
        assert backoff_delay("job-x", 30, cfg) <= 2.0 * 1.25

    def test_grows_exponentially_until_cap(self):
        cfg = SupervisorConfig(backoff_base_s=0.1, backoff_cap_s=10.0,
                               backoff_jitter=0.0)
        delays = [backoff_delay("j", a, cfg) for a in (1, 2, 3, 4)]
        assert delays == [pytest.approx(0.1 * 2 ** i) for i in range(4)]


class TestLifecycles:
    def test_clean_job_completes(self, tmp_path):
        supervisor, queue = make_supervisor(tmp_path)
        queue.submit(JobSpec(kind="sleep", name="ok", params={"sleep_s": 0.05}))
        state = drive(supervisor, queue, "ok")
        assert state.status is JobStatus.COMPLETED
        assert state.digest.startswith("sleep:")
        assert state.attempts == 1

    def test_flaky_job_retries_then_succeeds(self, tmp_path):
        supervisor, queue = make_supervisor(tmp_path, max_attempts=5)
        queue.submit(
            JobSpec(kind="flaky", name="fl", params={"fails_before": 2})
        )
        state = drive(supervisor, queue, "fl")
        assert state.status is JobStatus.COMPLETED
        assert state.attempts == 3  # two deliberate failures, then success
        assert supervisor.metrics.get("retries") == 2

    def test_poison_job_quarantined_with_traceback(self, tmp_path):
        supervisor, queue = make_supervisor(tmp_path, max_attempts=3)
        queue.submit(JobSpec(kind="fail", name="px"))
        state = drive(supervisor, queue, "px")
        assert state.status is JobStatus.QUARANTINED
        assert "failed 3 attempts" in state.reason
        assert "ValueError" in state.reason
        assert "Traceback" in state.traceback  # captured from error.json
        assert supervisor.metrics.get("quarantined") == 1

    def test_wedged_worker_killed_on_stale_heartbeat(self, tmp_path):
        supervisor, queue = make_supervisor(
            tmp_path, heartbeat_timeout_s=0.4, deadline_s=60.0, max_attempts=1
        )
        queue.submit(JobSpec(kind="wedge", name="wd", params={"hang_s": 60.0}))
        t0 = time.monotonic()
        state = drive(supervisor, queue, "wd", timeout_s=15.0)
        assert state.status is JobStatus.QUARANTINED
        assert "wedged (heartbeat stale)" in state.reason
        assert time.monotonic() - t0 < 10.0  # killed by liveness, not deadline
        assert supervisor.metrics.get("worker_kills") == 1

    def test_deadline_kills_beating_but_overlong_worker(self, tmp_path):
        supervisor, queue = make_supervisor(
            tmp_path, heartbeat_timeout_s=5.0, deadline_s=0.3, max_attempts=1
        )
        # beats every 20 ms, so only the deadline can reap it
        queue.submit(
            JobSpec(kind="sleep", name="slow", params={"sleep_s": 30.0})
        )
        state = drive(supervisor, queue, "slow", timeout_s=15.0)
        assert state.status is JobStatus.QUARANTINED
        assert "deadline exceeded" in state.reason

    def test_kill_all_clears_pool(self, tmp_path):
        supervisor, queue = make_supervisor(tmp_path)
        queue.submit(JobSpec(kind="sleep", name="s1", params={"sleep_s": 30.0}))
        supervisor.spawn(queue.next_ready())
        assert len(supervisor.running) == 1
        supervisor.kill_all()
        assert supervisor.running == {}
