"""Queue state machine: journal-first transitions, replay equivalence."""

import pytest

from repro.service import JobPriority, JobQueue, JobSpec, Journal
from repro.service.jobs import JobStatus


@pytest.fixture
def queue(tmp_path):
    journal = Journal(tmp_path / "journal.bin").open()
    q = JobQueue(journal)
    q.replay()
    yield q
    journal.close()


def spec(name, priority=JobPriority.NORMAL, **params):
    return JobSpec(kind="sleep", name=name, params=params, priority=priority)


class TestSubmission:
    def test_submit_is_idempotent(self, queue):
        assert queue.submit(spec("a")) == "a"
        assert queue.submit(spec("a")) == "a"
        assert len(queue.jobs) == 1
        assert queue.duplicate_submits == 1

    def test_content_hash_ids_are_stable(self, queue):
        s1 = JobSpec(kind="sleep", params={"x": 1})
        s2 = JobSpec(kind="sleep", params={"x": 1})
        assert s1.job_id == s2.job_id
        queue.submit(s1)
        queue.submit(s2)
        assert len(queue.jobs) == 1

    def test_unknown_kind_rejected_at_spec(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="bitcoin", params={})


class TestScheduling:
    def test_priority_then_fifo(self, queue):
        queue.submit(spec("low", JobPriority.LOW))
        queue.submit(spec("normal-1"))
        queue.submit(spec("normal-2"))
        queue.submit(spec("high", JobPriority.HIGH))
        order = []
        while True:
            state = queue.next_ready(now=0.0)
            if state is None:
                break
            order.append(state.job_id)
            queue.mark_started(state.job_id, 1)
        assert order == ["high", "normal-1", "normal-2", "low"]

    def test_backoff_fence_hides_job_until_due(self, queue):
        queue.submit(spec("a"))
        queue.mark_started("a", 1)
        queue.mark_failed("a", 1, "boom", retry_at=100.0)
        assert queue.next_ready(now=99.0) is None
        assert queue.earliest_fence() == 100.0
        assert queue.next_ready(now=100.5).job_id == "a"

    def test_requeue_does_not_burn_attempt(self, queue):
        queue.submit(spec("a"))
        queue.mark_started("a", 1)
        queue.mark_requeued("a", "service restart")
        state = queue.jobs["a"]
        assert state.status is JobStatus.PENDING
        assert state.attempts == 1  # next spawn is still attempt 2
        assert state.not_before == 0.0


class TestTerminalStates:
    def test_complete_is_first_wins(self, queue):
        queue.submit(spec("a"))
        queue.mark_completed("a", "d1")
        queue.mark_quarantined("a", "too late")
        queue.mark_shed("a", "too late")
        assert queue.jobs["a"].status is JobStatus.COMPLETED
        assert queue.jobs["a"].digest == "d1"

    def test_duplicate_complete_same_digest_is_legal(self, queue):
        queue.submit(spec("a"))
        queue.mark_completed("a", "d1")
        queue.mark_completed("a", "d1")
        assert queue.divergent_completes == []
        assert queue.jobs["a"].digests_seen == ["d1", "d1"]

    def test_divergent_duplicate_complete_is_flagged(self, queue):
        queue.submit(spec("a"))
        queue.mark_completed("a", "d1")
        queue.mark_completed("a", "d2")
        assert queue.divergent_completes == ["a"]
        assert queue.jobs["a"].digest == "d1"  # first wins

    def test_quarantine_records_reason_and_traceback(self, queue):
        queue.submit(spec("a"))
        queue.mark_quarantined("a", "failed 5 attempts", traceback="Trace...")
        state = queue.jobs["a"]
        assert state.status is JobStatus.QUARANTINED
        assert state.reason == "failed 5 attempts"
        assert state.traceback == "Trace..."


class TestReplayEquivalence:
    def test_replay_reconstructs_exact_state(self, tmp_path):
        journal = Journal(tmp_path / "j.bin").open()
        q1 = JobQueue(journal)
        q1.replay()
        q1.submit(spec("a"))
        q1.submit(spec("b", JobPriority.HIGH))
        q1.mark_started("a", 1)
        q1.mark_failed("a", 1, "boom", retry_at=5.0)
        q1.mark_started("b", 1)
        q1.mark_completed("b", "bd")
        journal.close()

        q2 = JobQueue(Journal(tmp_path / "j.bin"))
        q2.replay()
        assert set(q2.jobs) == {"a", "b"}
        for job_id in q2.jobs:
            s1, s2 = q1.jobs[job_id], q2.jobs[job_id]
            assert (s1.status, s1.attempts, s1.not_before, s1.digest) == (
                s2.status, s2.attempts, s2.not_before, s2.digest
            )
            assert s1.submit_seq == s2.submit_seq

    def test_transition_without_submit_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "j.bin").open()
        journal.append({"type": "complete", "job_id": "ghost", "digest": "d"})
        journal.close()
        q = JobQueue(Journal(tmp_path / "j.bin"))
        assert q.replay() == 1
        assert q.jobs == {}

    def test_counts_and_all_terminal(self, queue):
        queue.submit(spec("a"))
        queue.submit(spec("b"))
        assert not queue.all_terminal()
        queue.mark_completed("a", "d")
        queue.mark_quarantined("b", "poison")
        assert queue.all_terminal()
        counts = queue.counts()
        assert counts["completed"] == 1 and counts["quarantined"] == 1
