"""Journal fuzz: random tail damage must never corrupt committed state.

The crash-safety contract (see :mod:`repro.service.journal`) is easy to
verify for the handful of hand-built tears in ``test_journal.py``; this
file drives the same contract through hundreds of *random* damage
patterns — truncation at an arbitrary byte, bit flips anywhere in the
tail, and partially-written appends — and checks three invariants for
every one:

* ``recover()``/``replay()``/``scan()`` never raise;
* every record whose frame ends before the first damaged byte is
  preserved exactly (committed records are never lost);
* replay returns a strict prefix of what was written — a damaged or
  half-written record is never resurrected, in whole or mangled.
"""

import json
import random
import struct
import zlib

import pytest

from repro.service import Journal, JournalWarning


def _make_records(rng, n):
    return [
        {
            "type": rng.choice(["submit", "start", "complete", "fail"]),
            "job_id": f"job-{i}",
            "payload": rng.getrandbits(64),
        }
        for i in range(n)
    ]


def _frame_ends(records):
    """Byte offset at which each record's frame ends."""
    ends, off = [], 0
    for record in records:
        payload = json.dumps(record, sort_keys=True).encode()
        off += struct.calcsize(">II") + len(payload)
        ends.append(off)
    return ends


def _committed_prefix(records, ends, first_damaged_byte):
    """Records whose frames lie wholly before the damage."""
    return [r for r, end in zip(records, ends) if end <= first_damaged_byte]


def _check_contract(path, records, ends, first_damaged_byte):
    committed = _committed_prefix(records, ends, first_damaged_byte)
    scanned, good_bytes, _ = Journal.scan(path)

    # Nothing committed is lost: the scan keeps at least every record
    # that predates the damage, byte-for-byte identical.
    assert scanned[: len(committed)] == committed
    # Nothing torn is resurrected: whatever survived beyond that is a
    # prefix of what was actually written (a CRC-valid frame the damage
    # happened to miss), never a mangled or invented record.
    assert scanned == records[: len(scanned)]

    journal = Journal(path)
    journal.recover()  # must never raise, clean or torn
    assert journal.replay() == scanned  # repair preserved the prefix
    assert Journal.scan(path)[2] is None  # and left no damage behind

    # The repaired journal must accept appends like a fresh one.
    extra = {"type": "requeue", "job_id": "post-repair"}
    with journal:
        journal.append(extra)
    assert journal.replay() == scanned + [extra]


def _write(path, records):
    with Journal(path) as journal:
        for record in records:
            journal.append(record)


@pytest.mark.filterwarnings("ignore::repro.service.JournalWarning")
@pytest.mark.parametrize("seed", range(40))
def test_random_truncation(tmp_path, seed):
    rng = random.Random(1000 + seed)
    records = _make_records(rng, rng.randint(1, 12))
    path = tmp_path / "j.bin"
    _write(path, records)
    ends = _frame_ends(records)

    cut = rng.randrange(ends[-1] + 1)  # 0 .. full length inclusive
    with open(path, "r+b") as fh:
        fh.truncate(cut)

    _check_contract(path, records, ends, first_damaged_byte=cut)


@pytest.mark.filterwarnings("ignore::repro.service.JournalWarning")
@pytest.mark.parametrize("seed", range(40))
def test_random_bit_flips(tmp_path, seed):
    rng = random.Random(2000 + seed)
    records = _make_records(rng, rng.randint(2, 12))
    path = tmp_path / "j.bin"
    _write(path, records)
    ends = _frame_ends(records)

    blob = bytearray(path.read_bytes())
    # Flip 1-4 bits in the tail half of the file (crashes tear tails,
    # not heads — but any earlier offset would satisfy the same checks).
    lo = ends[len(ends) // 2 - 1]
    flips = sorted(rng.randrange(lo, len(blob)) for _ in range(rng.randint(1, 4)))
    for off in flips:
        blob[off] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(blob))

    _check_contract(path, records, ends, first_damaged_byte=flips[0])


@pytest.mark.filterwarnings("ignore::repro.service.JournalWarning")
@pytest.mark.parametrize("seed", range(20))
def test_partial_append_then_reopen(tmp_path, seed):
    """A SIGKILL mid-append: the torn record must vanish, silently and
    completely, and the reopened journal must keep working."""
    rng = random.Random(3000 + seed)
    records = _make_records(rng, rng.randint(1, 8))
    path = tmp_path / "j.bin"
    _write(path, records)
    ends = _frame_ends(records)

    torn = {"type": "complete", "job_id": "torn", "nonce": rng.getrandbits(64)}
    payload = json.dumps(torn, sort_keys=True).encode()
    frame = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
    keep = rng.randrange(1, len(frame))  # at least 1 byte short
    with open(path, "ab") as fh:
        fh.write(frame[:keep])

    # open() runs recover(); the torn record must not survive it.
    with Journal(path) as journal:
        replayed = journal.replay()
    assert replayed == records
    assert torn not in replayed
    _check_contract(path, records, ends, first_damaged_byte=ends[-1])
