"""Graceful degradation: shed newest LOW only, never NORMAL/HIGH."""

from repro.service import DegradeConfig, JobPriority, JobQueue, JobSpec, Journal
from repro.service.degrade import pressure, shed_excess
from repro.service.jobs import JobStatus


def make_queue(tmp_path):
    journal = Journal(tmp_path / "j.bin").open()
    queue = JobQueue(journal)
    queue.replay()
    return queue


def submit(queue, name, priority):
    queue.submit(JobSpec(kind="sleep", name=name, params={}, priority=priority))


def test_sheds_newest_low_first(tmp_path):
    queue = make_queue(tmp_path)
    submit(queue, "low-old", JobPriority.LOW)
    submit(queue, "norm", JobPriority.NORMAL)
    submit(queue, "low-new", JobPriority.LOW)
    shed = shed_excess(queue, DegradeConfig(max_pending=2))
    assert shed == ["low-new"]
    assert queue.jobs["low-new"].status is JobStatus.SHED
    assert "load shed" in queue.jobs["low-new"].reason
    assert queue.jobs["low-old"].status is JobStatus.PENDING


def test_never_sheds_normal_or_high(tmp_path):
    queue = make_queue(tmp_path)
    for i in range(4):
        submit(queue, f"n{i}", JobPriority.NORMAL)
    submit(queue, "h0", JobPriority.HIGH)
    assert shed_excess(queue, DegradeConfig(max_pending=2)) == []
    assert all(s.status is JobStatus.PENDING for s in queue.jobs.values())


def test_sheds_down_to_cap_and_is_journaled(tmp_path):
    queue = make_queue(tmp_path)
    for i in range(5):
        submit(queue, f"l{i}", JobPriority.LOW)
    shed = shed_excess(queue, DegradeConfig(max_pending=2))
    assert shed == ["l4", "l3", "l2"]  # newest first
    # the sheds survive a replay: they were journaled as terminal states
    queue.journal.close()
    fresh = JobQueue(Journal(tmp_path / "j.bin"))
    fresh.replay()
    assert sorted(
        j for j, s in fresh.jobs.items() if s.status is JobStatus.SHED
    ) == ["l2", "l3", "l4"]


def test_uncapped_config_never_sheds(tmp_path):
    queue = make_queue(tmp_path)
    for i in range(10):
        submit(queue, f"l{i}", JobPriority.LOW)
    assert shed_excess(queue, DegradeConfig(max_pending=None)) == []
    assert pressure(queue, DegradeConfig(max_pending=None)) == 0.0
    assert pressure(queue, DegradeConfig(max_pending=5)) == 2.0
