"""Fig. 8 / Section 4.2 — butterfly global sum.

Regenerates the measured global-sum latencies (2/4/8/16-way single-CPU
and 2x2..2x16 SMP mix-mode), the least-squares fit
``tgsum = 4.67 log2 N - 0.95 us``, and verifies the Fig. 8 communication
pattern (partial sums per round) on the wire.
"""

import math
import time

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.network.costmodel import (
    ARCTIC_GSUM_MEASURED,
    ARCTIC_GSUM_SMP_MEASURED,
    arctic_cost_model,
)
from repro.parallel.des_collectives import des_global_sum
from repro.parallel.globalsum import butterfly_global_sum

from _emit import emit_bench
from _tables import emit, format_table, us


def des_gsum_latencies():
    out = {}
    for n in (2, 4, 8, 16):
        cluster = HyadesCluster()
        _, t = des_global_sum(cluster, [float(i) for i in range(n)])
        out[n] = t
    return out


def test_bench_des_gsum_16way(benchmark):
    def one():
        cluster = HyadesCluster()
        return des_global_sum(cluster, [1.0] * 16)[1]

    t = benchmark(one)
    assert t == pytest.approx(18.2e-6, rel=0.10)


def test_bench_fig8_pattern(benchmark):
    vals = [float(i) for i in range(8)]
    results, trace = benchmark(butterfly_global_sum, vals, True)
    assert results == [sum(vals)] * 8
    # the partial sums annotated in Fig. 8
    assert trace[0][0] == vals[0] + vals[1]
    assert trace[1][0] == sum(vals[:4])


def test_bench_gsum_table(benchmark):
    t0 = time.perf_counter()
    des = benchmark(des_gsum_latencies)
    wall = time.perf_counter() - t0
    model = arctic_cost_model()
    rows = []
    for n in (2, 4, 8, 16):
        fit = 4.67e-6 * math.log2(n) - 0.95e-6
        rows.append(
            [
                f"{n}-way",
                us(des[n]),
                us(ARCTIC_GSUM_MEASURED[n]),
                us(fit, 2),
                us(model.gsum_time(n, smp=True)),
                us(ARCTIC_GSUM_SMP_MEASURED[n]),
            ]
        )
    emit(
        "fig08_globalsum",
        format_table(
            "Section 4.2 - global sum latencies (usec)",
            ["config", "DES", "paper", "fit 4.67log2N-0.95", "2xN model", "2xN paper"],
            rows,
        ),
    )
    for n in (2, 4, 8, 16):
        assert des[n] == pytest.approx(ARCTIC_GSUM_MEASURED[n], rel=0.10)
    emit_bench(
        "fig08_globalsum",
        wall_clock_s=wall,
        virtual_time_s=des[16],
        model_error={
            f"gsum_{n}way_vs_paper": des[n] / ARCTIC_GSUM_MEASURED[n] - 1.0
            for n in (2, 4, 8, 16)
        },
        data={f"gsum_{n}way_us": des[n] * 1e6 for n in (2, 4, 8, 16)},
        units={"virtual_time_s": "16-way gsum, DES seconds"},
    )


def test_bench_message_count(benchmark):
    """N log2 N messages over log2 N rounds (Section 4.2)."""

    def count():
        cluster = HyadesCluster()
        des_global_sum(cluster, [1.0] * 16)
        return sum(cluster.niu(i).packets_sent for i in range(16))

    total = benchmark(count)
    assert total == 16 * 4
