"""Machine-readable benchmark records for the harness.

Thin binding of the schema'd emitter in :mod:`repro.obs.bench` to this
harness's ``benchmarks/out/`` directory: every converted benchmark calls
:func:`emit_bench` once and leaves a ``BENCH_<name>.json`` that
validates against :data:`repro.obs.schema.BENCH_SCHEMA` — uniform
``wall_clock_s`` / ``virtual_time_s`` / ``model_error`` fields plus a
free-form ``data`` payload.  CI uploads these files as artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Optional

from repro.obs.bench import write_bench

from _tables import OUT_DIR


def emit_bench(
    name: str,
    *,
    wall_clock_s: float,
    virtual_time_s: Optional[float] = None,
    model_error: Optional[dict] = None,
    data: Optional[dict] = None,
    units: Optional[dict] = None,
) -> pathlib.Path:
    """Write ``benchmarks/out/BENCH_<name>.json``; returns the path."""
    return write_bench(
        OUT_DIR,
        name,
        wall_clock_s=wall_clock_s,
        virtual_time_s=virtual_time_s,
        model_error=model_error,
        data=data,
        units=units,
    )
