"""Section 4.1 / 2.2 — fabric behaviour under load.

Regenerates three hardware claims on the discrete-event fabric:

* "Arctic's fat-tree interconnect can handle multiple simultaneous
  transfers with undiminished pair-wise bandwidth" (Section 4.1);
* high-priority messages are never blocked behind low-priority bulk
  traffic (Section 2.2);
* random up-routing spreads adversarial (hot-path) traffic across the
  redundant upper links.
"""

import pytest

from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.network.fattree import FatTree, FatTreeParams
from repro.network.packet import Packet, Priority
from repro.sim import Engine

from _tables import emit, format_table, mbs, us


def simultaneous_exchange_bandwidths(nbytes=32768):
    """All eight disjoint node pairs transfer at once; per-pair bw."""
    cluster = HyadesCluster()
    eng = cluster.engine
    done = {}

    def sender(a, b):
        yield from cluster.niu(a).vi_send(b, nbytes)

    def receiver(a, b):
        xfer = yield from cluster.niu(b).vi_serve_request()
        yield from cluster.niu(b).vi_wait_complete(xfer.xid)
        done[(a, b)] = eng.now

    # pair i <-> i+8: every transfer crosses the bisection
    pairs = [(i, i + 8) for i in range(8)]
    for a, b in pairs:
        eng.process(sender(a, b))
        eng.process(receiver(a, b))
    eng.run()
    return {p: nbytes / t for p, t in done.items()}


def solo_exchange_bandwidth(nbytes=32768):
    cluster = HyadesCluster()
    eng = cluster.engine
    done = {}

    def sender():
        yield from cluster.niu(0).vi_send(8, nbytes)

    def receiver():
        xfer = yield from cluster.niu(8).vi_serve_request()
        yield from cluster.niu(8).vi_wait_complete(xfer.xid)
        done["t"] = eng.now

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    return nbytes / done["t"]


def high_priority_latency_under_load():
    """Latency of a HIGH packet while bulk LOW traffic saturates the path."""
    eng = Engine()
    ft = FatTree(eng, 16)
    seen = {}
    for ep in range(16):
        ft.attach_endpoint(ep, lambda p, ep=ep: seen.setdefault((p.tag, p.priority), eng.now))
    # bulk low-priority background 0 -> 15
    for i in range(300):
        ft.inject(Packet(src=0, dst=15, payload_words=[0] * 22, tag=i % 1024))
    hi = Packet(src=0, dst=15, payload_words=[1, 2], tag=2000 % 2048, priority=Priority.HIGH)
    t0 = eng.now
    ft.inject(hi)
    eng.run()
    return seen[(2000 % 2048, Priority.HIGH)] - t0


def test_bench_simultaneous_pairwise_bandwidth(benchmark):
    bws = benchmark.pedantic(simultaneous_exchange_bandwidths, rounds=1, iterations=1)
    solo = solo_exchange_bandwidth()
    worst = min(bws.values())
    emit(
        "sec41_simultaneous",
        format_table(
            "Section 4.1 - eight simultaneous bisection-crossing transfers",
            ["quantity", "MB/s"],
            [
                ["solo pair", mbs(solo)],
                ["worst pair of 8 concurrent", mbs(worst)],
                ["best pair of 8 concurrent", mbs(max(bws.values()))],
                ["degradation", f"{(1 - worst / solo) * 100:.1f}%"],
            ],
        ),
    )
    # undiminished pair-wise bandwidth: the 110 MB/s NIU rate is below
    # the 150 MB/s links, and the fat tree provides disjoint paths
    assert worst == pytest.approx(solo, rel=0.02)


def test_bench_priority_protection(benchmark):
    t_hi = benchmark.pedantic(high_priority_latency_under_load, rounds=1, iterations=1)
    # 300 queued max-size LOW packets would serialize for ~190 us; the
    # HIGH packet bypasses all but the in-flight one
    zero_load = 8 * 0.15e-6  # head latency, 8 links
    one_packet = 96 / 150e6  # worst-case in-flight packet ahead of us
    emit(
        "sec41_priority",
        format_table(
            "Section 2.2 - high priority under saturating low-priority load",
            ["quantity", "value (us)"],
            [
                ["HIGH packet head latency under load", us(t_hi, 2)],
                ["zero-load head latency", us(zero_load, 2)],
                ["bound: zero-load + per-hop blocking", us(zero_load + 8 * one_packet, 2)],
                ["full LOW queue drain (if FIFO)", us(300 * 96 / 150e6, 1)],
            ],
        ),
    )
    assert t_hi <= zero_load + 8 * one_packet + 1e-9
    assert t_hi < 0.05 * (300 * 96 / 150e6)  # nowhere near FIFO draining


def test_bench_random_uproute_spreads_hotspot(benchmark):
    """Many sources sending to distinct destinations through the same
    deterministic ascent get serialized; the random-uproute bit spreads
    them over the redundant upper links."""

    def run(random_route):
        eng = Engine()
        ft = FatTree(eng, 16, FatTreeParams(seed=3))
        last = {}
        for ep in range(16):
            ft.attach_endpoint(ep, lambda p, ep=ep: last.__setitem__(ep, eng.now))
        # source 0 blasts packets to all of 8..15 (same subtree ascent)
        for i in range(200):
            ft.inject(
                Packet(
                    src=0,
                    dst=8 + (i % 8),
                    payload_words=[0] * 22,
                    tag=i % 2048,
                    random_uproute=random_route,
                )
            )
        eng.run()
        return max(last.values())

    t_rand = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    t_det = run(False)
    emit(
        "sec41_uproute",
        format_table(
            "Adaptive (random) vs deterministic up-routing, single-source burst",
            ["routing", "burst completion (us)"],
            [["deterministic", us(t_det)], ["random uproute", us(t_rand)]],
        ),
    )
    # single-source injection serializes at the injection link either
    # way, so completion is injection-bound and nearly equal...
    assert t_rand == pytest.approx(t_det, rel=0.25)
