"""Ablation — butterfly vs tree global sum (Section 4.2).

The paper: "With ample network bandwidth, our implementation of global
sum minimizes latency at the expense of more messages."  The butterfly
sends N log2 N messages over log2 N rounds; the ablated binomial
reduce-then-broadcast sends only 2(N-1) messages but needs 2 log2 N
rounds — double the latency-critical path.
"""

import math

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.parallel.des_collectives import des_global_sum
from repro.parallel.globalsum import butterfly_global_sum, tree_reduce_broadcast

from _tables import emit, format_table, us

ROUND_COST = 4.67e-6  # per-round latency from the paper's fit


def compare(n=16):
    bf_rounds = int(math.log2(n))
    _, tree_rounds = tree_reduce_broadcast([0.0] * n)
    return {
        "bf_latency": ROUND_COST * bf_rounds - 0.95e-6,
        "tree_latency": ROUND_COST * tree_rounds - 0.95e-6,
        "bf_msgs": n * bf_rounds,
        "tree_msgs": 2 * (n - 1),
        "bf_rounds": bf_rounds,
        "tree_rounds": tree_rounds,
    }


def test_bench_gsum_strategy_table(benchmark):
    c = benchmark(compare)
    emit(
        "ablation_gsum_tree",
        format_table(
            "Ablation - 16-way global sum: butterfly (paper) vs reduce+broadcast",
            ["strategy", "rounds", "messages", "latency (us)"],
            [
                ["butterfly (paper)", c["bf_rounds"], c["bf_msgs"], us(c["bf_latency"])],
                ["tree reduce+bcast", c["tree_rounds"], c["tree_msgs"], us(c["tree_latency"])],
            ],
        ),
    )
    # butterfly: half the critical-path rounds, ~2x the messages
    assert c["tree_rounds"] == 2 * c["bf_rounds"]
    assert c["bf_msgs"] > c["tree_msgs"]
    assert c["bf_latency"] < c["tree_latency"]


def test_bench_values_agree(benchmark):
    """Both strategies compute the same (bitwise-deterministic) sum."""
    vals = [0.1 * i for i in range(16)]
    bf, _ = benchmark(butterfly_global_sum, vals)
    tr, _ = tree_reduce_broadcast(vals)
    assert bf[0] == pytest.approx(tr[0], rel=1e-14)


def test_bench_fabric_absorbs_butterfly_traffic(benchmark):
    """'Ample network bandwidth': the N log2 N messages cause no
    measurable queueing on the fat tree — DES latency matches the
    zero-contention model within tolerance."""

    def run():
        cl = HyadesCluster()
        _, t = des_global_sum(cl, [1.0] * 16)
        busy = max(
            link.stats.busy_time
            for links in list(cl.fabric.up_links.values()) + list(cl.fabric.down_links.values())
            for link in links
        )
        return t, busy

    t, busiest = benchmark(run)
    # busiest link is idle almost the entire sum: bandwidth is ample
    assert busiest < 0.05 * t
