"""Section 5.3 — validation of the performance model.

Regenerates the one-year atmospheric simulation arithmetic (Nt = 77760,
Ni = 60): predicted Tcomm + Tcomp vs the observed 183 minutes, and an
independent check where the "observation" is a timed run of the real
GCM on the lockstep runtime.
"""

import pytest

from repro.core.constants import VALIDATION
from repro.core.validation import observed_from_simulation, section53_validation

from _tables import emit, format_table

MIN = 60.0


def test_bench_section53_arithmetic(benchmark):
    rep = benchmark(section53_validation)
    emit(
        "sec53_validation",
        format_table(
            "Section 5.3 - one-year atmosphere run (Nt=77760, Ni=60)",
            ["quantity", "reproduction", "paper"],
            [
                ["Tcomm (min)", f"{rep.tcomm / MIN:.1f}", "30.1"],
                ["Tcomp (min)", f"{rep.tcomp / MIN:.1f}", "151"],
                ["predicted total (min)", f"{rep.predicted_total / MIN:.0f}", "181"],
                ["observed wall-clock (min)", f"{rep.observed / MIN:.0f}", "183"],
                ["model error", f"{rep.relative_error * 100:+.1f}%", "~-1%"],
            ],
        ),
    )
    assert rep.predicted_total == pytest.approx(181 * MIN, rel=0.02)
    assert abs(rep.relative_error) < 0.02


def test_bench_model_vs_simulated_observation(benchmark):
    """Both sides produced by the reproduction: analytic prediction vs
    the virtual wall-clock of an actual (small) GCM integration."""
    from repro.gcm.atmosphere import atmosphere_model

    def observe():
        m = atmosphere_model(nx=32, ny=16, nz=5, px=2, py=2, dt=300.0)
        nt = 100
        obs = observed_from_simulation(m, n_steps=8, nt=nt)
        # predict with the same runtime's own accounting
        st = max(m.runtime.stats, key=lambda s: s.compute_time + s.comm_time)
        total_accounted = m.runtime.elapsed
        return obs, total_accounted, m

    obs, accounted, m = benchmark.pedantic(observe, rounds=1, iterations=1)
    # the scaled observation is a pure extrapolation of per-step cost;
    # sanity: positive minutes-scale number for 100 virtual steps
    assert obs > 0
    # accounting identity: elapsed == compute + comm + sync of the
    # critical-path rank, within float tolerance
    worst = max(range(m.runtime.n_ranks), key=lambda r: m.runtime.clocks[r])
    s = m.runtime.stats[worst]
    assert m.runtime.clocks[worst] == pytest.approx(
        s.compute_time + s.exchange_time + s.gsum_time + s.sync_time, rel=1e-9
    )
