"""Section 2.1 — PCI/host I/O microbenchmarks.

Regenerates the measured host characteristics that govern communication
performance: 8-byte mmap read latency (0.93 us), back-to-back 8-byte
mmap write gap (0.18 us), and sustained device DMA (> 120 MB/s).
"""

import pytest

from repro.niu.pci import PCIBus, PCIParams
from repro.sim import Engine

from _tables import emit, format_table, mbs, us


def measure_mmap_costs(reps: int = 100):
    """Time `reps` reads and writes through the PCI cost model."""
    eng = Engine()
    bus = PCIBus(eng)
    out = {}

    def reader():
        t0 = eng.now
        for _ in range(reps):
            yield eng.timeout(bus.mmap_read_cost(8))
        out["read"] = (eng.now - t0) / reps
        t1 = eng.now
        for _ in range(reps):
            yield eng.timeout(bus.mmap_write_cost(8))
        out["write"] = (eng.now - t1) / reps

    eng.process(reader())
    eng.run()
    return out


def measure_dma_bandwidth(nbytes: int = 1 << 20):
    eng = Engine()
    bus = PCIBus(eng)
    out = {}

    def mover():
        t0 = eng.now
        yield eng.process(bus.dma(nbytes))
        out["t"] = eng.now - t0

    eng.process(mover())
    eng.run()
    return nbytes / out["t"]


def test_bench_mmap_costs(benchmark):
    res = benchmark(measure_mmap_costs)
    assert res["read"] == pytest.approx(0.93e-6, rel=1e-6)
    assert res["write"] == pytest.approx(0.18e-6, rel=1e-6)


def test_bench_dma_bandwidth(benchmark):
    bw = benchmark(measure_dma_bandwidth)
    assert bw >= 120e6


def test_bench_sec21_table(benchmark):
    res = benchmark(measure_mmap_costs)
    bw = measure_dma_bandwidth()
    p = PCIParams()
    emit(
        "sec21_pci",
        format_table(
            "Section 2.1 - host PCI characteristics: measured (paper)",
            ["quantity", "measured", "paper"],
            [
                ["8B mmap read latency (us)", us(res["read"], 2), "0.93"],
                ["8B mmap write gap (us)", us(res["write"], 2), "0.18"],
                ["device DMA (MB/s)", mbs(bw), ">120"],
                ["PCI burst peak (MB/s)", mbs(p.peak_bandwidth), "132 (32-bit/33-MHz)"],
            ],
        ),
    )
