"""Straggler mitigation: throughput recovered by tile rebalancing.

A single node running 2x/4x/8x slow gates a lockstep BSP run — every
stage waits for the straggler.  With the domain over-decomposed (two
tiles per node), the :class:`~repro.parallel.StragglerMitigator` can
shed tiles off the suspect at checkpoint boundaries and claw back a
large share of the lost throughput; this bench quantifies that share
across slowdown factor and scale, against two controls:

* the same degraded run with mitigation disabled (the loss to recover);
* a healthy run with the mitigator armed (which must make zero moves —
  the no-false-positive control).

Results land in ``benchmarks/out/BENCH_straggler.json`` and the table
in ``benchmarks/out/straggler.txt``.
"""

import time

import numpy as np

from repro.faults import DegradationSchedule, FaultPlan, SlowdownEvent
from repro.parallel import Decomposition, LockstepRuntime, StragglerMitigator

from _emit import emit_bench
from _tables import emit, format_table

TILE = 16
TILES_PER_NODE = 2
STAGES = 12
CHECKPOINT_EVERY = 4
FLOPS_PER_RANK = 16 * 16 * 200.0


def _grid(n_ranks):
    px = 1
    for p in range(int(np.sqrt(n_ranks)), 0, -1):
        if n_ranks % p == 0:
            px = p
            break
    return px, n_ranks // px


def run_bsp(n_ranks, factor=1.0, mitigate=False):
    """One over-decomposed lockstep run; returns (elapsed, moves)."""
    px, py = _grid(n_ranks)
    decomp = Decomposition(TILE * px, TILE * py, px, py)
    runtime = LockstepRuntime(
        decomp, backend="analytic", n_nodes=n_ranks // TILES_PER_NODE
    )
    if factor > 1.0:
        plan = FaultPlan(
            slowdowns=(SlowdownEvent(node=1, start=0.0, duration=1e9,
                                     factor=factor),)
        )
        runtime.set_degradation(DegradationSchedule(plan))
    mitigator = StragglerMitigator(runtime) if mitigate else None
    zeros = [0.0] * n_ranks
    for stage in range(STAGES):
        runtime.charge_compute(FLOPS_PER_RANK, "ps")
        runtime.global_sum(zeros)
        if mitigator is not None:
            mitigator.observe()
            if stage % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1:
                mitigator.rebalance()
    return runtime.elapsed, (mitigator.moves if mitigator else [])


def sweep(factors=(2.0, 4.0, 8.0), scales=(64, 256)):
    rows = []
    for n in scales:
        t_clean, moves_clean = run_bsp(n, mitigate=True)
        for factor in factors:
            t_none, _ = run_bsp(n, factor=factor)
            t_mit, moves = run_bsp(n, factor=factor, mitigate=True)
            loss = t_none - t_clean
            rows.append(
                {
                    "n_ranks": n,
                    "factor": factor,
                    "clean_s": t_clean,
                    "unmitigated_s": t_none,
                    "mitigated_s": t_mit,
                    "moves": len(moves),
                    "clean_moves": len(moves_clean),
                    "recovered_frac": (t_none - t_mit) / loss if loss > 0 else 0.0,
                }
            )
    return rows


def test_bench_straggler():
    t0 = time.perf_counter()
    rows = sweep()
    wall = time.perf_counter() - t0

    table = [
        [
            r["n_ranks"],
            f"{r['factor']:.0f}x",
            f"{r['clean_s'] * 1e3:.2f}",
            f"{r['unmitigated_s'] * 1e3:.2f}",
            f"{r['mitigated_s'] * 1e3:.2f}",
            r["moves"],
            f"{r['recovered_frac']:.0%}",
        ]
        for r in rows
    ]
    emit(
        "straggler",
        format_table(
            f"Throughput recovered by tile rebalancing ({STAGES} stages, "
            f"single slow node, {TILES_PER_NODE} tiles/node)",
            ["N", "slowdown", "clean (ms)", "no-mit (ms)", "mitigated (ms)",
             "moves", "recovered"],
            table,
        ),
    )
    emit_bench(
        "straggler",
        wall_clock_s=wall,
        virtual_time_s=rows[0]["clean_s"],
        model_error=None,
        data={"sweep": rows},
        units={"virtual_time_s": "clean N=64 run, BSP seconds"},
    )

    # The no-false-positive control: a healthy run never moves a tile.
    assert all(r["clean_moves"] == 0 for r in rows)
    # Mitigation must never hurt, and must recover real throughput once
    # the slowdown clears the suspicion threshold.
    assert all(r["mitigated_s"] <= r["unmitigated_s"] * 1.01 for r in rows)
    assert all(
        r["recovered_frac"] > 0.2 for r in rows if r["factor"] >= 4.0
    )
