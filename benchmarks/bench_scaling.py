"""Extension study — scaling along the paper's two implicit axes.

Not a table in the paper, but the analysis its Section 5.4 sets up:
sustained performance vs processor count per interconnect (where
parallel efficiency collapses without a system-area network), and vs
resolution (the grain-size crossover at which commodity interconnects
become viable, per the "coarse grain scenarios" remark).
"""

import pytest

from repro.core.scaling import cpu_sweep, model_at, resolution_sweep
from repro.network.costmodel import (
    arctic_cost_model,
    fast_ethernet_cost_model,
    gigabit_ethernet_cost_model,
)

from _tables import emit, format_table


def test_bench_cpu_scaling_per_interconnect(benchmark):
    models = {
        "Arctic": arctic_cost_model(),
        "Gigabit Ethernet": gigabit_ethernet_cost_model(),
        "Fast Ethernet": fast_ethernet_cost_model(),
    }
    counts = (1, 2, 4, 8, 16, 32, 64)
    sweeps = benchmark.pedantic(
        lambda: {n: cpu_sweep(counts, cost_model=m) for n, m in models.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for n_cpus_idx, n_cpus in enumerate(counts):
        row = [n_cpus]
        for name in models:
            p = sweeps[name][n_cpus_idx]
            row.append(f"{p.sustained / 1e6:7.0f} ({p.efficiency:4.0%})")
        rows.append(row)
    emit(
        "scaling_cpus",
        format_table(
            "Extension - sustained MFlop/s (efficiency) vs CPUs, 2.8125 deg atmosphere",
            ["CPUs"] + [f"{n}" for n in models],
            rows,
        ),
    )
    arctic = sweeps["Arctic"]
    fe = sweeps["Fast Ethernet"]
    # Arctic keeps >=60 % efficiency through 32 CPUs
    assert all(p.efficiency > 0.6 for p in arctic if 1 < p.n_cpus <= 32)
    # Fast Ethernet collapses below 20 % by 16 CPUs
    assert next(p for p in fe if p.n_cpus == 16).efficiency < 0.2
    # Arctic's aggregate rate still grows to 64 CPUs; FE's has peaked
    assert arctic[-1].sustained > arctic[-2].sustained
    fe_rates = [p.sustained for p in fe]
    assert max(fe_rates) != fe_rates[-1]


def test_bench_resolution_crossover(benchmark):
    """Refining the grid makes tiles coarser-per-message: GE's
    efficiency recovers with problem size (the 'coarse grain' regime),
    while Arctic is already compute-bound at the paper's resolution."""
    ge = benchmark.pedantic(
        lambda: resolution_sweep((1, 2, 4), cost_model=gigabit_ethernet_cost_model()),
        rounds=1,
        iterations=1,
    )
    arctic = resolution_sweep((1, 2, 4), cost_model=arctic_cost_model())
    rows = []
    for a, g in zip(arctic, ge):
        rows.append(
            [
                f"{a.nx}x{a.ny}",
                f"{a.efficiency:.0%}",
                f"{g.efficiency:.0%}",
                f"{a.pfpp_ds / 1e6:.1f}",
                f"{g.pfpp_ds / 1e6:.1f}",
            ]
        )
    emit(
        "scaling_resolution",
        format_table(
            "Extension - efficiency and Pfpp,ds vs resolution on 16 CPUs",
            ["grid", "Arctic eff.", "GE eff.", "Arctic Pfpp,ds (M)", "GE Pfpp,ds (M)"],
            rows,
        ),
    )
    # GE efficiency grows with problem size; Arctic's headroom shrinks
    ge_eff = [p.efficiency for p in ge]
    assert ge_eff == sorted(ge_eff)
    assert ge_eff[0] < 0.5 < ge_eff[-1] + 0.3  # tiny at paper scale
    assert arctic[0].efficiency > 0.7


def test_bench_ds_dominates_at_scale(benchmark):
    """As CPUs grow at fixed problem size, the fine-grain DS phase's
    share of the step grows — the fundamental strong-scaling limit the
    PFPP analysis predicts."""

    def shares():
        out = []
        for n in (4, 16, 64):
            p = model_at(n, cost_model=arctic_cost_model())
            step = p.tps + 60 * p.tds
            out.append((n, 60 * p.tds / step))
        return out

    res = benchmark(shares)
    fracs = [f for _, f in res]
    assert fracs == sorted(fracs)
