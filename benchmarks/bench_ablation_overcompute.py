"""Ablation — overcomputation (Section 4).

The paper's design: tiles carry a width-3 halo and PS performs ONE
exchange per step, overcomputing in the halo so intermediate stencil
passes need no communication.  The ablated alternative: width-1 halos
with an exchange before every stencil pass (three passes deep in PS).

Finding (and the honest shape of the trade): in pure communication
time one wide exchange always beats three thin ones, and the absolute
saving grows with the interconnect's per-message overhead (from ~1.4 ms
per step on Arctic to ~70 ms on Fast Ethernet).  Charging the redundant
halo flops at their *upper bound* (every PS flop recomputed over the
full wide ring each pass) can formally exceed that saving — but the
bound is loose, and the quantity the paper optimizes is the *number of
communication and synchronization points* (3x fewer), whose jitter cost
on a shared machine the analytic model cannot see.
"""

import pytest

from repro.network.costmodel import (
    arctic_cost_model,
    fast_ethernet_cost_model,
    gigabit_ethernet_cost_model,
)
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table

FIELDS = 5  # PS exchanges five 3-D state fields
PASSES = 3  # stencil depth covered by the width-3 halo
NPS = 781.0
FPS = 50e6
MS = 1e-3


def compare(cost_model, nz=10, n_ranks=16):
    deep = Decomposition(128, 64, 4, 4, olx=3)
    thin = Decomposition(128, 64, 4, 4, olx=1)
    mix = cost_model.name == "Arctic"
    t_once = FIELDS * cost_model.exchange_time(
        deep.edge_bytes(nz=nz, rank=5), mixmode=mix, n_ranks=n_ranks
    )
    t_per_pass = PASSES * FIELDS * cost_model.exchange_time(
        thin.edge_bytes(nz=nz, rank=5), mixmode=mix, n_ranks=n_ranks
    )
    # redundant compute, upper bound: every PS flop recomputed over the
    # full wide-halo ring each pass (real kernels recompute far less)
    t = deep.tile(5)
    vol3 = (t.ny + 6) * (t.nx + 6) * nz
    vol1 = (t.ny + 2) * (t.nx + 2) * nz
    t_redundant_ub = (vol3 - vol1) * NPS / FPS
    return t_once, t_per_pass, t_redundant_ub


def test_bench_overcompute_across_interconnects(benchmark):
    models = {
        "Arctic": arctic_cost_model(),
        "Gigabit Ethernet": gigabit_ethernet_cost_model(),
        "Fast Ethernet": fast_ethernet_cost_model(),
    }
    results = benchmark.pedantic(
        lambda: {n: compare(m) for n, m in models.items()}, rounds=1, iterations=1
    )
    rows = []
    for name, (t_once, t_pp, t_red) in results.items():
        rows.append(
            [
                name,
                f"{t_once / MS:.2f}",
                f"{(t_once + t_red) / MS:.2f}",
                f"{t_pp / MS:.2f}",
                f"{t_pp / (t_once + t_red):.2f}x",
            ]
        )
    emit(
        "ablation_overcompute",
        format_table(
            "Ablation - overcomputation vs exchange-per-pass, per PS step (ms)",
            [
                "interconnect",
                "1 wide exch",
                "+ redundant flops (UB)",
                "3 thin exchanges",
                "win (>1 = overcompute)",
            ],
            rows,
        ),
    )
    # pure comm time always favours one wide exchange
    for name, (t_once, t_pp, _t_red) in results.items():
        assert t_pp > t_once, name
    # the absolute saving grows with interconnect overhead: FE saves
    # more per step than Arctic's whole 5-field exchange costs
    savings = {n: t_pp - t_once for n, (t_once, t_pp, _r) in results.items()}
    assert savings["Fast Ethernet"] > savings["Gigabit Ethernet"] > savings["Arctic"]
    assert savings["Fast Ethernet"] > results["Arctic"][0]


def test_bench_sync_point_reduction(benchmark):
    """Independent of time, overcomputation cuts PS synchronization
    points per step from PASSES to 1 (the paper's stated aim)."""
    t_once, t_pp, _ = benchmark(compare, arctic_cost_model())
    sync_overcompute, sync_thin = 1, PASSES
    assert sync_overcompute < sync_thin
