"""Section 6 — the "personal supercomputer" claim.

"the Hyades cluster is a platform on which a century long synchronous
climate simulation, coupling an atmosphere at 2.8deg resolution to a
1deg ocean, can be completed within a two week period."

This benchmark assembles that projection from the performance model:
the 2.8125-deg atmosphere (validated at 183 min/year in Section 5.3)
runs on one half of the cluster while the 1-deg ocean runs on the
other; the century completes when the slower component does.  Also
reproduced: the turn-around argument — a dedicated cluster's
turn-around is its CPU time, while a shared supercomputer adds queue
wait to every job.
"""

import pytest

from repro.core.constants import ATM_PS_PARAMS, DS_PARAMS, VALIDATION
from repro.core.perf_model import DSPhaseParams, PerformanceModel, PSPhaseParams
from repro.network.costmodel import arctic_cost_model
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table

DAY = 86400.0
YEAR_STEPS_ATM = VALIDATION.nt  # 77760 steps/year at dt = 405 s


def atmosphere_century_time():
    pm = PerformanceModel(
        ps=PSPhaseParams.from_ref(ATM_PS_PARAMS),
        ds=DSPhaseParams.from_ref(DS_PARAMS),
    )
    return 100 * pm.trun(YEAR_STEPS_ATM, VALIDATION.ni)


def ocean_1deg_century_time(dt=3600.0, ni=VALIDATION.ni):
    """1-deg ocean (360x160x30, the paper's lat range) on 16 CPUs."""
    cm = arctic_cost_model()
    nx, ny, nz = 360, 160, 30
    d = Decomposition(nx, ny, 4, 4, olx=3)
    ds = Decomposition(nx, ny, 2, 4, olx=1)
    nxyz = nx * ny * nz // 16
    nxy = nx * ny // 8
    texchxyz = cm.exchange_time(d.edge_bytes(nz=nz, rank=5), mixmode=True)
    ds_rank = max(range(8), key=lambda r: sum(ds.edge_bytes(nz=1, width=1, rank=r)))
    texchxy = cm.exchange_time(ds.edge_bytes(nz=1, width=1, rank=ds_rank))
    pm = PerformanceModel(
        ps=PSPhaseParams(751, nxyz, texchxyz, 50e6),
        ds=DSPhaseParams(36, nxy, cm.gsum_time(8, smp=True), texchxy, 60e6),
    )
    nt = int(100 * 365.25 * DAY / dt)
    return pm.trun(nt, ni), pm


def test_bench_century_projection(benchmark):
    t_atm = benchmark(atmosphere_century_time)
    t_ocn, _ = ocean_1deg_century_time()
    coupled = max(t_atm, t_ocn)
    emit(
        "sec6_century",
        format_table(
            "Section 6 - century-long coupled simulation (2.8deg atmos + 1deg ocean)",
            ["component", "configuration", "century wall-clock (days)"],
            [
                ["atmosphere", "2.8125 deg, dt=405 s, 16 CPUs", f"{t_atm / DAY:.1f}"],
                ["ocean", "1 deg, 30 levels, dt=3600 s, 16 CPUs", f"{t_ocn / DAY:.1f}"],
                ["coupled (slower wins)", "32 CPUs total", f"{coupled / DAY:.1f}"],
                ["paper's claim", "-", "within a two week period"],
            ],
        ),
    )
    # the atmosphere side is exactly the Section 5.3 arithmetic:
    # 183 min/year -> ~12.7 days/century
    assert t_atm / DAY == pytest.approx(12.7, rel=0.03)
    # the coupled century lands in the 'about two weeks' regime
    assert 10 < coupled / DAY < 25


def test_bench_turnaround_argument(benchmark):
    """Dedicated cluster turn-around = CPU time; a shared machine with
    2x the compute but queue waits loses on spontaneous experiments."""
    t_year, _pm = benchmark.pedantic(
        lambda: (atmosphere_century_time() / 100, None), rounds=1, iterations=1
    )
    t_dedicated = t_year  # 183-minute experiment, runs immediately
    # a shared vector machine twice as fast per the Fig. 10 rows, with a
    # (conservative for 1999) one-day batch queue
    t_shared = t_year / 2 + 1.0 * DAY
    emit(
        "sec6_turnaround",
        format_table(
            "Section 6 - turn-around for a one-year exploratory run",
            ["platform", "compute (h)", "queue (h)", "turn-around (h)"],
            [
                ["dedicated Hyades", f"{t_dedicated / 3600:.1f}", "0", f"{t_dedicated / 3600:.1f}"],
                [
                    "shared supercomputer (2x faster)",
                    f"{t_year / 2 / 3600:.1f}",
                    "24",
                    f"{t_shared / 3600:.1f}",
                ],
            ],
        ),
    )
    assert t_dedicated < t_shared
