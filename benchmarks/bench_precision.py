"""Automated mixed-precision tuning: search trajectory + PFPP shift.

Three claims of the precision subsystem, measured live here:

1. **The accuracy-gated search converges and is non-trivial.**  From a
   pure-float32 start the ddmin bisection reverts the *fewest* groups
   back to float64 that pass the SST / kinetic-energy / overturning
   gates against the float64 baseline (smoke-scale coupled run).  The
   trajectory must show at least one failing candidate (the gates do
   real work) and the tuned config must pass every gate.

2. **The tuned config halves the wire.**  Exchange + gsum payloads at
   float32 cut the statically-accounted wire bytes by >= 50 % — the
   acceptance criterion of the subsystem.

3. **Cheaper wires move the PFPP scoreboard.**  Re-pricing the
   analytic scoreboard at the tuned config's wire itemsizes must raise
   the per-second PFPP ceiling on the fat tree and the shared-Ethernet
   baseline (the two extremes of the zoo).  The shared-medium caveat —
   its mpi-fit gsum is byte-insensitive — is visible in the data: only
   the exchange terms shrink there.

Results land in ``benchmarks/out/BENCH_precision.json``.
"""

import time

from repro.core.pfpp import topology_scoreboard
from repro.precision.search import tune_precision, wire_byte_reduction

from _emit import emit_bench
from _tables import emit, format_table

#: The two scoreboard extremes re-priced under the tuned config.
PFPP_TOPOLOGIES = ("fattree", "ethernet")
PFPP_N = 256
#: Acceptance floor on the exchange+gsum wire-byte reduction.
REDUCTION_GATE = 0.50


def run_search():
    """The accuracy-gated search at smoke scale (inline evaluation)."""
    return tune_precision(smoke=True)


def test_bench_precision(benchmark):
    """Search convergence + wire-byte reduction + PFPP shift."""
    result = benchmark.pedantic(run_search, rounds=1, iterations=1)

    # -- claim 1: converged, gated, non-trivial -------------------------
    assert result["passed"], f"tuned config fails gates: {result['final_report']}"
    trajectory = result["trajectory"]
    assert any(not step["passed"] for step in trajectory), (
        "every candidate passed - the gates are vacuous at this tolerance"
    )
    assert result["n_evaluations"] >= 3

    # -- claim 2: >= 50% of exchange+gsum wire bytes gone ---------------
    wire = result["wire"]
    assert wire["reduction"] >= REDUCTION_GATE, (
        f"wire-byte reduction {wire['reduction']:.0%} < {REDUCTION_GATE:.0%}"
    )

    # -- claim 3: the scoreboard moves under the tuned wire -------------
    from repro.precision import PrecisionConfig

    tuned = PrecisionConfig.from_dict(result["tuned"])
    kwargs = tuned.scoreboard_args()
    t0 = time.perf_counter()
    base = topology_scoreboard(topologies=PFPP_TOPOLOGIES, n_values=(PFPP_N,))
    mixed = topology_scoreboard(
        topologies=PFPP_TOPOLOGIES, n_values=(PFPP_N,),
        precision="tuned", **kwargs,
    )
    scoreboard_wall = time.perf_counter() - t0
    pfpp_shift = {}
    for b, m in zip(base, mixed):
        assert m.pfpp_ps > b.pfpp_ps, (
            f"{b.topology}: tuned wire does not raise Pfpp,ps "
            f"({m.pfpp_ps / 1e6:.1f}M <= {b.pfpp_ps / 1e6:.1f}M)"
        )
        pfpp_shift[b.topology] = {
            "n_nodes": b.n_nodes,
            "pfpp_ps_all64": b.pfpp_ps,
            "pfpp_ps_tuned": m.pfpp_ps,
            "pfpp_ds_all64": b.pfpp_ds,
            "pfpp_ds_tuned": m.pfpp_ds,
            "speedup_ps": m.pfpp_ps / b.pfpp_ps,
            "speedup_ds": m.pfpp_ds / b.pfpp_ds,
        }

    report = result["final_report"]
    emit(
        "precision",
        format_table(
            f"Mixed-precision tuning ({result['n_evaluations']} candidates, "
            f"{wire['reduction']:.0%} wire-byte reduction)",
            ["quantity", "value", "gate"],
            [
                ["reverted to float64",
                 ", ".join(result["reverted_groups"]) or "(nothing)", ""],
                *[
                    [f"rel-err {k}", f"{report['errors'][k]:.3e}",
                     f"<= {report['tolerances'][k]:.1e}"]
                    for k in sorted(report["errors"])
                ],
                *[
                    [f"Pfpp,ps {t} (N={PFPP_N})",
                     f"{s['pfpp_ps_tuned'] / 1e6:.1f} MF",
                     f"> {s['pfpp_ps_all64'] / 1e6:.1f} MF (all64)"]
                    for t, s in pfpp_shift.items()
                ],
            ],
        ),
    )
    emit_bench(
        "precision",
        wall_clock_s=result["wall_clock_s"] + scoreboard_wall,
        model_error={
            f"rel_err_{k}": v for k, v in report["errors"].items()
        },
        data={
            "smoke": result["smoke"],
            "n_evaluations": result["n_evaluations"],
            "trajectory": trajectory,
            "reverted_groups": result["reverted_groups"],
            "tuned": result["tuned"],
            "tolerances": result["tolerances"],
            "wire": wire,
            "wire_reference": wire_byte_reduction(tuned, smoke=False),
            "reduction_gate": REDUCTION_GATE,
            "pfpp_shift": pfpp_shift,
        },
        units={"model_error": "relative L2 error vs float64 baseline"},
    )
