"""Ablation — VI-mode vs PIO-mode exchange (Sections 2.3, 4.1).

The StarT-X NIU offers both mechanisms; the exchange primitive uses VI
(DMA) for bulk halo blocks.  This ablation quantifies why: PIO moves at
most ~40 MB/s (CPU mmap costs per 88-byte packet) but pays no 8.6 us
negotiation, so tiny blocks favour PIO; the crossover sits near one
packet (~64 B) because PIO *receives* cost 0.93 us per 8-byte uncached
read — precisely why the NIU keeps both mechanisms and the GCM uses PIO
for global sums (8-byte messages) and VI for halo blocks.
"""

import pytest

from repro.network.costmodel import arctic_cost_model
from repro.niu.startx import PIO_COST_MODEL, VI_FRAG_BYTES

from _tables import emit, format_table, mbs, us


def pio_transfer_time(nbytes: int) -> float:
    """One-direction PIO block transfer: CPU-limited packetization."""
    packets, rem = divmod(nbytes, VI_FRAG_BYTES)
    t = packets * (PIO_COST_MODEL.os_time(VI_FRAG_BYTES) + PIO_COST_MODEL.or_time(VI_FRAG_BYTES))
    if rem:
        t += PIO_COST_MODEL.os_time(rem) + PIO_COST_MODEL.or_time(rem)
    return t


def sweep():
    vi = arctic_cost_model()
    rows = []
    for s in (8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536):
        t_pio = pio_transfer_time(s)
        t_vi = vi.transfer_time(s)
        rows.append((s, t_pio, t_vi))
    return rows


def find_crossover():
    vi = arctic_cost_model()
    s = 8
    while pio_transfer_time(s) < vi.transfer_time(s):
        s += 8
        if s > 1 << 20:
            break
    return s


def test_bench_mode_sweep(benchmark):
    rows = benchmark(sweep)
    cross = find_crossover()
    table = [
        [s, us(tp), us(tv), mbs(s / tp), mbs(s / tv), "PIO" if tp < tv else "VI"]
        for s, tp, tv in rows
    ]
    emit(
        "ablation_exchange_modes",
        format_table(
            f"Ablation - PIO vs VI one-direction transfer (crossover ~{cross} B)",
            ["block (B)", "PIO (us)", "VI (us)", "PIO MB/s", "VI MB/s", "winner"],
            table,
        ),
    )
    # tiny messages: PIO wins (no negotiation round trip); bulk: VI wins
    # by an order of magnitude.  The crossover sits near one packet
    # (~64 B) because the 0.93 us/8 B uncached *read* cost throttles PIO
    # receives — the very disparity VI mode exists to dodge (Section 2.3).
    assert rows[0][1] < rows[0][2]
    s, tp, tv = rows[-1]
    assert tv < tp / 2.5
    assert 32 <= cross <= 256


def test_bench_vi_peak_vs_pio_peak(benchmark):
    cross = benchmark(find_crossover)
    vi_peak = arctic_cost_model().perceived_bandwidth(1 << 20)
    pio_peak = (1 << 20) / pio_transfer_time(1 << 20)
    # Section 2.3's rationale: cached/DMA path is several times faster
    # than uncached PIO for bulk data
    assert vi_peak / pio_peak > 2.5
