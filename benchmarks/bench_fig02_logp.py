"""Fig. 2 — LogP characteristics of PIO message passing.

Regenerates the table (Os, Or, Tround-trip/2, Lnetwork for 8-byte and
64-byte payloads) by ping-pong measurement on the simulated cluster,
alongside the paper's measured values.
"""

import time

import pytest

from repro.core.constants import FIG2_PAPER
from repro.core.logp import fig2_table, measure_logp

from _emit import emit_bench
from _tables import emit, format_table, us


@pytest.mark.parametrize("size", [8, 64])
def test_bench_logp_ping_pong(benchmark, size):
    """Benchmark the DES ping-pong measurement itself."""
    lp = benchmark(measure_logp, size)
    p_os, p_or, p_half, p_lat = FIG2_PAPER[size]
    assert lp.os_ == pytest.approx(p_os, rel=0.11)
    assert lp.or_ == pytest.approx(p_or, rel=0.08)
    assert lp.half_rtt == pytest.approx(p_half, rel=0.06)


def test_bench_fig2_table(benchmark):
    t0 = time.perf_counter()
    rows = benchmark(fig2_table, measured=True)
    wall = time.perf_counter() - t0
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r["payload_bytes"],
                f"{us(r['os'], 2)} ({us(r['paper_os'], 1)})",
                f"{us(r['or'], 2)} ({us(r['paper_or'], 1)})",
                f"{us(r['half_rtt'], 2)} ({us(r['paper_half_rtt'], 1)})",
                f"{us(r['latency'], 2)} ({us(r['paper_latency'], 1)})",
            ]
        )
    emit(
        "fig02_logp",
        format_table(
            "Fig. 2 - LogP of PIO message passing: measured (paper), usec",
            ["size (B)", "Os", "Or", "Trt/2", "Lnet"],
            table_rows,
        ),
    )
    assert len(rows) == 2
    emit_bench(
        "fig02_logp",
        wall_clock_s=wall,
        virtual_time_s=max(r["half_rtt"] for r in rows),
        model_error={
            f"{q}_{r['payload_bytes']}B": r[q] / r[f"paper_{q}"] - 1.0
            for r in rows
            for q in ("os", "or", "half_rtt")
        },
        data={
            f"{q}_{r['payload_bytes']}B_us": r[q] * 1e6
            for r in rows
            for q in ("os", "or", "half_rtt", "latency")
        },
        units={"virtual_time_s": "worst half round-trip, DES seconds"},
    )
