"""Ablation — SMP usage choices (Sections 4.1-4.2, 5).

Two design decisions of the production configuration:

* two ranks per SMP (mix-mode: slave exchanges relayed by the master at
  0.7x bandwidth, +1 us hierarchical global sum) versus one rank per
  SMP on twice the nodes;
* DS solved on one tile per SMP master (nxy = 1024) versus DS spread
  over all sixteen ranks.
"""

import pytest

from repro.gcm.ocean import ocean_model
from repro.network.costmodel import arctic_cost_model
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table, us


def exchange_mixmode_comparison(nz=10):
    cm = arctic_cost_model()
    d = Decomposition(128, 64, 4, 4, olx=3)
    edges = d.edge_bytes(nz=nz, rank=5)
    return {
        "single": cm.exchange_time(edges, mixmode=False),
        "mixmode": cm.exchange_time(edges, mixmode=True),
        "gsum_16smp": cm.gsum_time(16, smp=False),
        "gsum_2x8": cm.gsum_time(8, smp=True),
    }


def ds_placement_comparison():
    cm = arctic_cost_model()
    masters = Decomposition(128, 64, 2, 4, olx=1)  # 8 tiles of 1024 cols
    allranks = Decomposition(128, 64, 4, 4, olx=1)  # 16 tiles of 512 cols
    out = {}
    for name, d, n_gsum, smp, nxy in (
        ("masters", masters, 8, True, 1024),
        ("all ranks", allranks, 8, True, 512),
    ):
        rank = max(range(d.n_ranks), key=lambda r: sum(d.edge_bytes(nz=1, width=1, rank=r)))
        texch = cm.exchange_time(d.edge_bytes(nz=1, width=1, rank=rank))
        tg = cm.gsum_time(n_gsum, smp=smp)
        tcomp = 36 * nxy / 60e6
        out[name] = {"texch": texch, "tgsum": tg, "tcomp": tcomp,
                     "tds": tcomp + 2 * texch + 2 * tg}
    return out


def test_bench_mixmode_table(benchmark):
    c = benchmark(exchange_mixmode_comparison)
    d = ds_placement_comparison()
    emit(
        "ablation_smp",
        format_table(
            "Ablation - SMP usage (atmosphere 3-D exchange / DS placement)",
            ["quantity", "option A", "option B"],
            [
                [
                    "3-D exchange (us)",
                    f"1 rank/SMP: {us(c['single'])}",
                    f"2 ranks/SMP mix-mode: {us(c['mixmode'])}",
                ],
                [
                    "global sum (us)",
                    f"16 SMPs flat: {us(c['gsum_16smp'])}",
                    f"2x8 hierarchical: {us(c['gsum_2x8'])}",
                ],
                [
                    "tds per iteration (us)",
                    f"DS on 8 masters: {us(d['masters']['tds'])}",
                    f"DS on 16 ranks: {us(d['all ranks']['tds'])}",
                ],
            ],
        ),
    )
    # mix-mode costs more per exchange than dedicating an SMP per rank,
    # but less than 2x (the relay overlaps pack with DMA)
    assert c["single"] < c["mixmode"] < 2 * c["single"]
    # hierarchical gsum over 8 masters beats a flat 16-way sum
    assert c["gsum_2x8"] < c["gsum_16smp"]
    # DS-on-masters: more compute per master but the same comm; the
    # halved compute of DS-on-all wins per iteration in this model
    # (the paper used masters because slaves cannot touch the NIU)
    assert d["all ranks"]["tcomp"] < d["masters"]["tcomp"]


def test_bench_gcm_both_smp_modes(benchmark):
    """End-to-end: the real (small) GCM under both SMP configurations;
    mix-mode pays a measurable exchange premium."""

    def run(cpn):
        m = ocean_model(nx=32, ny=16, nz=4, px=2, py=2, dt=600.0, cpus_per_node=cpn)
        m.run(3)
        worst = max(m.runtime.stats, key=lambda s: s.exchange_time)
        return m.runtime.elapsed, worst.exchange_time

    el2, ex2 = benchmark.pedantic(run, args=(2,), rounds=1, iterations=1)
    el1, ex1 = run(1)
    assert ex2 > ex1  # mix-mode exchange premium
