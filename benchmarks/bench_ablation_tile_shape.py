"""Ablation — tile shape: long strips vs compact blocks (Fig. 5).

"Tile sizes and distributions can be defined to produce long strips
consistent with vector memories.  Alternatively small, compact blocks
can be created which are better suited to deep memory hierarchies."

Two measurable consequences:

* communication: strips trade two neighbours for longer edges; blocks
  minimize halo volume (perimeter/area) at the cost of more transfers;
* computation: on a cache machine, the *real* NumPy kernel time per
  cell differs with tile aspect (measured live on this host).
"""

import time

import numpy as np
import pytest

from repro.gcm.eos import LinearEOS
from repro.gcm.grid import Grid, GridParams
from repro.gcm.operators import FlopCounter
from repro.gcm.prognostic import DynamicsParams, compute_g_terms
from repro.network.costmodel import arctic_cost_model
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table, us


def comm_cost(px, py, nz=10):
    cm = arctic_cost_model()
    d = Decomposition(128, 64, px, py, olx=3)
    interior = max(
        range(d.n_ranks), key=lambda r: sum(d.edge_bytes(nz=nz, rank=r))
    )
    edges = d.edge_bytes(nz=nz, rank=interior)
    return cm.exchange_time(edges, mixmode=True), sum(edges), sum(1 for e in edges if e)


def kernel_time(px, py, nz=10, reps=3):
    """Real per-cell time of the PS kernel on one tile of this shape."""
    d = Decomposition(128, 64, px, py, olx=3)
    g = Grid(GridParams(nx=128, ny=64, nz=nz, lat0=-80, lat1=80), d)
    t = d.tile(0)
    rng = np.random.default_rng(0)
    shape = t.shape3d(nz)
    u, v = 0.1 * rng.standard_normal(shape), 0.1 * rng.standard_normal(shape)
    theta = 10.0 + rng.standard_normal(shape)
    salt = np.full(shape, 35.0)
    b = LinearEOS().buoyancy(theta, salt)
    params = DynamicsParams()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        compute_g_terms(0, g, u, v, theta, salt, b, params, FlopCounter())
        best = min(best, time.perf_counter() - t0)
    return best / (t.nx * t.ny * nz)


def test_bench_tile_shape_table(benchmark):
    shapes = {"strips 16x1 (8x64 tiles)": (16, 1), "blocks 4x4 (32x16 tiles)": (4, 4)}

    def build():
        return {name: comm_cost(*pq) for name, pq in shapes.items()}

    comm = benchmark(build)
    rows = []
    for name, (t_x, vol, nbrs) in comm.items():
        rows.append([name, us(t_x), f"{vol}", str(nbrs)])
    emit(
        "ablation_tile_shape",
        format_table(
            "Fig. 5 ablation - decomposition shape, 2.8125 deg atmosphere",
            ["decomposition", "texchxyz (us)", "halo volume (B)", "remote edges"],
            rows,
        ),
    )
    strip = comm["strips 16x1 (8x64 tiles)"]
    block = comm["blocks 4x4 (32x16 tiles)"]
    # strips send through only 2 edges but carry more volume; at 8-wide
    # tiles the volume penalty wins and blocks communicate cheaper
    assert strip[2] == 2 and block[2] == 4
    assert strip[1] > block[1]
    assert block[0] < strip[0]


def test_bench_tile_shape_cache_effect(benchmark):
    """Per-cell kernel time is shape-dependent on a real memory
    hierarchy (the 'deep memory hierarchies' clause of Fig. 5)."""
    t_strip = benchmark.pedantic(kernel_time, args=(16, 1), rounds=1, iterations=1)
    t_block = kernel_time(4, 4)
    emit(
        "ablation_tile_shape_cache",
        format_table(
            "Fig. 5 ablation - real per-cell kernel time on this host",
            ["tile shape", "ns/cell"],
            [
                ["strip 8x64", f"{t_strip * 1e9:.1f}"],
                ["block 32x16", f"{t_block * 1e9:.1f}"],
            ],
        ),
    )
    # both shapes must run; relative speed is host-dependent, so only
    # sanity-bound the ratio
    assert 0.2 < t_strip / t_block < 5.0
