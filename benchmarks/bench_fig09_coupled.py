"""Fig. 9 / Section 5.1 — the coupled atmosphere-ocean simulation.

Fig. 9 is a qualitative plot of model output (ocean currents, zonal
winds); this benchmark integrates a reduced coupled configuration and
reports the corresponding summary statistics: circulation develops in
both components, fields stay bounded, the coupler moves SST/stress, and
the combined sustained rate scales toward the paper's 1.6-1.8 GFlop/s
regime when extrapolated to the production configuration.
"""

import time

import numpy as np
import pytest

from repro.core.constants import COUPLED_SUSTAINED_RANGE, DS_PARAMS, OCN_PS_PARAMS, ATM_PS_PARAMS
from repro.core.perf_model import DSPhaseParams, PerformanceModel, PSPhaseParams
from repro.gcm import diagnostics as diag
from repro.gcm.coupled import coupled_model

from _emit import emit_bench
from _tables import emit, format_table


def run_coupled(windows=3):
    cm = coupled_model(
        nx=32, ny=16, nz_atm=5, nz_ocn=8, px=2, py=2, dt=300.0, coupling_interval=2
    )
    cm.run(windows)
    return cm


def production_combined_rate(ni=60.0):
    """Model-predicted combined rate of the full production run."""
    total = 0.0
    for ref in (ATM_PS_PARAMS, OCN_PS_PARAMS):
        pm = PerformanceModel(
            ps=PSPhaseParams.from_ref(ref), ds=DSPhaseParams.from_ref(DS_PARAMS)
        )
        total += pm.sustained_flops(ni, n_ps_ranks=16, n_ds_ranks=8)
    return total


def test_bench_coupled_integration(benchmark):
    t0 = time.perf_counter()
    cm = benchmark.pedantic(run_coupled, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    atm, ocn = cm.atmosphere, cm.ocean
    assert diag.is_finite(atm) and diag.is_finite(ocn)
    sst = ocn.surface_temperature()
    ke_a = diag.total_kinetic_energy(atm)
    ke_o = diag.total_kinetic_energy(ocn)
    combined_model_rate = production_combined_rate()
    emit(
        "fig09_coupled",
        format_table(
            "Fig. 9 / Sec. 5.1 - coupled run summary (reduced configuration)",
            ["quantity", "value", "paper context"],
            [
                ["coupling events", str(cm.couplings), "periodic BC exchange"],
                ["SST range (C)", f"{sst.min():.1f} .. {sst.max():.1f}", "Fig. 9 ocean panel"],
                ["atmos KE (J m^3/kg)", f"{ke_a:.2e}", "Fig. 9 wind panel"],
                ["ocean KE (J m^3/kg)", f"{ke_o:.2e}", "Fig. 9 currents panel"],
                [
                    "coupled sustained (reduced run)",
                    f"{cm.combined_sustained_flops() / 1e6:.0f} MF/s",
                    "-",
                ],
                [
                    "production combined (model)",
                    f"{combined_model_rate / 1e9:.2f} GF/s",
                    "1.6-1.8 GFlop/s",
                ],
            ],
        ),
    )
    # both components develop circulation
    assert ke_a > 0 and ke_o > 0
    # the production-scale model extrapolation lands in/near the band
    assert combined_model_rate > 0.7 * COUPLED_SUSTAINED_RANGE[0]
    assert combined_model_rate < 1.2 * COUPLED_SUSTAINED_RANGE[1]
    paper_mid = 0.5 * (COUPLED_SUSTAINED_RANGE[0] + COUPLED_SUSTAINED_RANGE[1])
    emit_bench(
        "fig09_coupled",
        wall_clock_s=wall,
        virtual_time_s=cm.elapsed,
        model_error={
            "production_combined_vs_paper_mid": combined_model_rate / paper_mid - 1.0
        },
        data={
            "couplings": cm.couplings,
            "reduced_sustained_mflops": cm.combined_sustained_flops() / 1e6,
            "production_combined_gflops": combined_model_rate / 1e9,
        },
        units={"virtual_time_s": "BSP critical-path seconds"},
    )


def test_bench_coupler_moves_boundary_conditions(benchmark):
    cm = benchmark.pedantic(run_coupled, rounds=1, iterations=1)
    # atmosphere received an SST field spanning warm tropics/cold poles
    sst_tiles = cm.atmosphere.coupling["sst"]
    vals = np.concatenate([t.ravel() for t in sst_tiles])
    assert vals.max() - vals.min() > 3.0
    # ocean received wind stress with structure
    taux = np.concatenate([t.ravel() for t in cm.ocean.coupling["taux"]])
    assert np.abs(taux).max() > 0
