"""Cross-architecture PFPP scoreboard over the topology zoo.

Two claims of the topology layer, both measured live here:

1. **The scoreboard covers the zoo.**  ``topology_scoreboard`` prices
   the paper's PFPP figures of merit (eqs. 14-15: the per-second and
   per-day interconnect ceilings) on every registered machine shape —
   the Arctic fat tree, 2-D/3-D tori, the CP-PACS hyper-crossbar and
   the shared-Ethernet PMS baseline — at N = 256 / 1024 / 4096 on the
   analytic tier, with the global grid weak-scaled past N = 256 so the
   rows stay comparable.

2. **Every analytic fabric model is anchored to packets.**  At N = 16
   each topology's DES fabric replays a link-disjoint pairwise stream
   and the analytic prediction must land within the 10 % acceptance
   band of the simulated time (in practice the closed forms are exact).

Results land in ``benchmarks/out/BENCH_topology.json``.
"""

import time

from repro.core.pfpp import topology_scoreboard
from repro.network.topology import (
    SCOREBOARD_TOPOLOGIES,
    crossvalidate_topology,
    make_topology,
)

from _emit import emit_bench
from _tables import emit, format_table

#: Node counts of the analytic scoreboard (weak-scaled past 256).
SCOREBOARD_N = (256, 1024, 4096)
#: DES cross-validation size and acceptance band.
CROSSVAL_N = 16
CROSSVAL_GATE = 0.10


def run_scoreboard():
    """The full cross-architecture scoreboard (analytic tier)."""
    return topology_scoreboard(
        topologies=SCOREBOARD_TOPOLOGIES, n_values=SCOREBOARD_N
    )


def test_bench_topology_pfpp(benchmark):
    """Scoreboard coverage + the per-topology DES anchoring gate."""
    t0 = time.perf_counter()
    rows = benchmark.pedantic(run_scoreboard, rounds=1, iterations=1)
    scoreboard_wall = time.perf_counter() - t0

    # -- coverage: every topology priced at every N --------------------
    assert {r.topology for r in rows} == set(SCOREBOARD_TOPOLOGIES)
    assert {r.n_nodes for r in rows} == set(SCOREBOARD_N)
    assert len(rows) == len(SCOREBOARD_TOPOLOGIES) * len(SCOREBOARD_N)
    for r in rows:
        assert r.tgsum > 0 and r.texchxy > 0 and r.texchxyz > 0
        assert r.pfpp_ps > 0 and r.pfpp_ds > 0

    # -- DES cross-validation at N=16, one fabric per topology ---------
    crossval = {}
    t0 = time.perf_counter()
    for name in SCOREBOARD_TOPOLOGIES:
        cv = crossvalidate_topology(make_topology(name, CROSSVAL_N))
        assert cv["rel_err"] <= CROSSVAL_GATE, (
            f"{name}: DES {cv['des_s'] * 1e6:.2f}us vs model "
            f"{cv['predicted_s'] * 1e6:.2f}us = "
            f"{cv['rel_err']:.1%} > {CROSSVAL_GATE:.0%}"
        )
        crossval[name] = cv
    crossval_wall = time.perf_counter() - t0

    emit(
        "topology_pfpp",
        format_table(
            f"Cross-architecture PFPP scoreboard (N={max(SCOREBOARD_N)})"
            " + DES anchoring at N=16",
            ["topology", "Pfpp,ps", "Pfpp,ds", "hops", "bisect", "crossval err"],
            [
                [
                    r.topology,
                    f"{r.pfpp_ps / 1e6:.1f} MF",
                    f"{r.pfpp_ds / 1e6:.2f} MF",
                    r.max_hops,
                    f"{r.bisection_bandwidth / 1e9:.1f} GB/s",
                    f"{crossval[r.topology]['rel_err']:.2%}",
                ]
                for r in rows
                if r.n_nodes == max(SCOREBOARD_N)
            ],
        ),
    )
    emit_bench(
        "topology",
        wall_clock_s=scoreboard_wall + crossval_wall,
        virtual_time_s=sum(cv["des_s"] for cv in crossval.values()),
        model_error={
            f"crossval_{name}": cv["rel_err"] for name, cv in crossval.items()
        },
        data={
            "scoreboard_n": list(SCOREBOARD_N),
            "crossval_n": CROSSVAL_N,
            "crossval_gate": CROSSVAL_GATE,
            "rows": [
                {
                    "topology": r.topology,
                    "n_nodes": r.n_nodes,
                    "grid": list(r.grid),
                    "gsum_algorithm": r.gsum_algorithm,
                    "tgsum_s": r.tgsum,
                    "texchxy_s": r.texchxy,
                    "texchxyz_s": r.texchxyz,
                    "pfpp_ps": r.pfpp_ps,
                    "pfpp_ds": r.pfpp_ds,
                    "max_hops": r.max_hops,
                    "bisection_bandwidth": r.bisection_bandwidth,
                    "area_scale": r.area_scale,
                }
                for r in rows
            ],
            "crossval": {
                name: {
                    "des_s": cv["des_s"],
                    "predicted_s": cv["predicted_s"],
                    "rel_err": cv["rel_err"],
                    "packets": cv["packets"],
                }
                for name, cv in crossval.items()
            },
        },
        units={"virtual_time_s": "DES fabric seconds (crossval streams)"},
    )
