"""Real-hardware throughput of the GCM kernels.

Everything else in this suite measures *virtual* (simulated-1999) time;
this benchmark measures the actual NumPy kernels on the present host,
using the analytic flop counts — i.e. it re-measures the paper's "Fps"
for the machine the reproduction runs on.  The paper's PII/400 sustained
50 MFlop/s on the PS kernel; a modern core through NumPy typically
sustains two to three orders of magnitude more, which is itself the
cleanest statement of why the paper's *interconnect* analysis, not its
absolute numbers, is the durable contribution.
"""

import pytest

from repro.gcm.eos import LinearEOS
from repro.gcm.grid import Grid, GridParams
from repro.gcm.operators import FlopCounter
from repro.gcm.prognostic import DynamicsParams, compute_g_terms
from repro.parallel.tiling import Decomposition


def make_setup(nx=128, ny=64, nz=10):
    g = Grid(
        GridParams(nx=nx, ny=ny, nz=nz, lat0=-80, lat1=80),
        Decomposition(nx, ny, 1, 1, olx=3),
    )
    import numpy as np

    rng = np.random.default_rng(0)
    t = g.decomp.tile(0)
    shape = t.shape3d(nz)
    u = 0.1 * rng.standard_normal(shape)
    v = 0.1 * rng.standard_normal(shape)
    theta = 10.0 + rng.standard_normal(shape)
    salt = 35.0 + 0.1 * rng.standard_normal(shape)
    eos = LinearEOS()
    b = eos.buoyancy(theta, salt)
    return g, u, v, theta, salt, b


def test_bench_ps_kernel_throughput(benchmark):
    g, u, v, theta, salt, b = make_setup()
    params = DynamicsParams()

    def kernel():
        fc = FlopCounter()
        compute_g_terms(0, g, u, v, theta, salt, b, params, fc)
        return fc.total

    flops = benchmark(kernel)
    elapsed = benchmark.stats.stats.mean
    rate = flops / elapsed
    print(
        f"\nPS kernel: {flops / 1e6:.1f} Mflop (counted) in {elapsed * 1e3:.1f} ms "
        f"-> {rate / 1e6:.0f} MFlop/s on this host (paper's PII/400: 50 MFlop/s, "
        f"speedup x{rate / 50e6:.0f})"
    )
    # any post-2015 machine beats the PII by a wide margin
    assert rate > 50e6


def test_bench_eos_throughput(benchmark):
    g, u, v, theta, salt, _ = make_setup()
    eos = LinearEOS()
    result = benchmark(eos.buoyancy, theta, salt)
    assert result.shape == theta.shape


def test_bench_exchange_throughput(benchmark):
    """Real time of the functional halo exchange (pure NumPy copies)."""
    import numpy as np

    from repro.parallel.exchange import exchange_halos

    d = Decomposition(128, 64, 4, 4, olx=3)
    rng = np.random.default_rng(1)
    fields = [rng.standard_normal(t.shape3d(10)) for t in d.tiles]

    benchmark(exchange_halos, d, fields)
    # sanity: the exchange must be far cheaper than the kernel itself
    assert benchmark.stats.stats.mean < 0.1
