"""Ablation — tile load balance over irregular geometry (Fig. 4/5).

Fig. 5's caption: "Connectivity between tiles can be tuned to reduce
the overall computational load."  With land in the domain (Fig. 4's
shaded cells), a land-blind decomposition hands some ranks mostly-dry
tiles; if the kernel skipped land, those ranks would idle while wet
ranks finish.  This benchmark quantifies the imbalance for the
double-basin geometry under both Fig. 5 decomposition styles, and what
a wet-cell-proportional (tuned) distribution would recover.
"""

import pytest

from repro.gcm.analysis import load_balance_report
from repro.gcm.grid import Grid, GridParams
from repro.gcm.topography import double_basin, flat_bottom
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table


def report_for(px, py, depth, nx=64, ny=32, nz=4):
    g = Grid(
        GridParams(nx=nx, ny=ny, nz=nz, lat0=-70, lat1=70, total_depth=4000.0),
        Decomposition(nx, ny, px, py, olx=1),
        depth=depth,
    )
    return load_balance_report(g)


def test_bench_load_balance_table(benchmark):
    depth = double_basin(64, 32, depth=4000.0, continent_width=8, polar_caps=3)

    def build():
        return {
            "blocks 4x4": report_for(4, 4, depth),
            "strips 8x1": report_for(8, 1, depth),
            "aquaplanet 4x4": report_for(4, 4, flat_bottom(64, 32, 4000.0)),
        }

    reports = benchmark(build)
    rows = []
    for name, rep in reports.items():
        rows.append(
            [
                name,
                f"{min(rep['wet_per_rank'])} .. {max(rep['wet_per_rank'])}",
                f"{rep['imbalance']:.2f}x",
                f"{rep['land_compute_fraction']:.0%}",
            ]
        )
    emit(
        "ablation_load_balance",
        format_table(
            "Fig. 5 ablation - wet-cell load balance, double-basin ocean",
            ["decomposition", "wet cells/rank", "imbalance (max/mean)", "land compute"],
            rows,
        ),
    )
    # the aquaplanet is perfectly balanced; land introduces imbalance
    assert reports["aquaplanet 4x4"]["imbalance"] == pytest.approx(1.0)
    assert reports["blocks 4x4"]["imbalance"] > 1.1
    # meridional continents hurt x-strips less than compact blocks here:
    # every strip crosses the same land bands
    assert reports["strips 8x1"]["imbalance"] <= reports["blocks 4x4"]["imbalance"]


def test_bench_tuned_distribution_recovers_balance(benchmark):
    """A wet-cell-proportional assignment (the 'tuned connectivity' the
    paper describes) bounds the achievable speedup over land-blind
    decomposition: imbalance -> ~1 for divisible work."""
    depth = double_basin(64, 32, depth=4000.0, continent_width=8, polar_caps=3)
    rep = benchmark(report_for, 4, 4, depth)
    # land-blind dense compute wastes this much on dry cells
    waste = rep["land_compute_fraction"]
    # the tuned bound: ideal speedup = imbalance factor (wet-skipping
    # kernel + proportional tiles), here a measurable double-digit %
    assert waste > 0.2
    assert rep["imbalance"] > 1.0
