"""Section 6 — comparison with an HPVM/Myrinet cluster.

Regenerates the two quantitative claims: a sixteen-way barrier takes
>50 us on HPVM (>2.5x Hyades's 18.2 us context-specific primitive), and
1-KB transfers run at ~42 MB/s (25 % below Hyades's 56.8 MB/s).
"""

import pytest

from repro.network.costmodel import arctic_cost_model
from repro.network.myrinet import myrinet_hpvm_cost_model

from _tables import emit, format_table, mbs, us


def comparison():
    arctic = arctic_cost_model()
    hpvm = myrinet_hpvm_cost_model()
    return {
        "barrier_hpvm": hpvm.barrier_time(16),
        "barrier_arctic": arctic.gsum_time(16),
        "bw1k_hpvm": hpvm.perceived_bandwidth(1024),
        "bw1k_arctic": arctic.perceived_bandwidth(1024),
    }


def test_bench_hpvm_comparison(benchmark):
    c = benchmark(comparison)
    emit(
        "sec6_hpvm",
        format_table(
            "Section 6 - Hyades vs HPVM/Myrinet",
            ["quantity", "HPVM/Myrinet", "Hyades/Arctic", "ratio", "paper"],
            [
                [
                    "16-way barrier (us)",
                    us(c["barrier_hpvm"]),
                    us(c["barrier_arctic"]),
                    f"{c['barrier_hpvm'] / c['barrier_arctic']:.2f}x",
                    ">50 vs 18.2 (>2.5x)",
                ],
                [
                    "1-KB transfer (MB/s)",
                    mbs(c["bw1k_hpvm"]),
                    mbs(c["bw1k_arctic"]),
                    f"{1 - c['bw1k_hpvm'] / c['bw1k_arctic']:.0%} slower",
                    "42 vs 56.8 (25% slower)",
                ],
            ],
        ),
    )
    assert c["barrier_hpvm"] / c["barrier_arctic"] > 2.5
    assert c["bw1k_hpvm"] == pytest.approx(0.75 * c["bw1k_arctic"], rel=0.05)
