"""Fig. 12 — Potential Floating-Point Performance per interconnect.

Regenerates the table for Fast Ethernet, Gigabit Ethernet and Arctic
using the reproduction's own interconnect models (and the paper's
measured values for reference), plus the Section 5.4 threshold analysis.
"""

import pytest

from repro.core.constants import DS_PARAMS, FIG12_PAPER
from repro.core.pfpp import ds_comm_budget, fig12_table

from _tables import emit, format_table, mflops, us


def test_bench_fig12_from_models(benchmark):
    rows = benchmark(fig12_table, from_models=True)
    by_name = {r.name: r for r in rows}
    table = []
    for name, r in by_name.items():
        ref = FIG12_PAPER[name]
        table.append(
            [
                name,
                f"{us(r.tgsum)} ({us(ref['tgsum'])})",
                f"{us(r.texchxy)} ({us(ref['texchxy'])})",
                f"{us(r.texchxyz)} ({us(ref['texchxyz'])})",
                f"{mflops(r.pfpp_ps)} ({mflops(ref['pfpp_ps'], 0)})",
                f"{mflops(r.pfpp_ds, 2)} ({mflops(ref['pfpp_ds'])})",
            ]
        )
    table.append(["(Fps, Fds)", "-", "-", "-", "50", "60"])
    emit(
        "fig12_pfpp",
        format_table(
            "Fig. 12 - PFPP at 2.8125 deg on 16 CPUs / 8 SMPs: model (paper), usec & MFlop/s",
            ["interconnect", "tgsum", "texchxy", "texchxyz", "Pfpp,ps", "Pfpp,ds"],
            table,
        ),
    )
    # headline orderings
    assert by_name["Arctic"].pfpp_ds > 2 * 60e6
    assert by_name["Gigabit Ethernet"].pfpp_ds < 60e6 / 5
    assert by_name["Fast Ethernet"].pfpp_ps < 50e6


def test_bench_threshold_analysis(benchmark):
    budget = benchmark(ds_comm_budget, DS_PARAMS.nds, DS_PARAMS.nxy, 60e6)
    ge = FIG12_PAPER["Gigabit Ethernet"]
    factor = (ge["tgsum"] + ge["texchxy"]) / budget
    emit(
        "fig12_threshold",
        format_table(
            "Section 5.4 - DS communication budget for Pfpp,ds = Fds",
            ["quantity", "value"],
            [
                ["tgsum + texchxy budget (us)", us(budget)],
                ["paper's quoted budget (us)", "306"],
                ["Gigabit Ethernet actual (us)", us(ge["tgsum"] + ge["texchxy"])],
                ["GE distance from threshold", f"{factor:.1f}x (paper: 'nearly a factor of ten')"],
            ],
        ),
    )
    assert budget == pytest.approx(306e-6, rel=0.01)
    assert factor == pytest.approx(10.0, rel=0.05)
