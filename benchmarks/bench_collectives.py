"""Collective-communications autotuner: crossover curves + DES check.

Emits ``BENCH_collectives.json`` with the analytic cost-vs-size curve of
every allreduce algorithm at N=16/64/256, the tuner's winner per point
(the crossover the autotuner exists to find), and a packet-level DES
cross-validation of the winning schedules at N=16.
"""

import time

import pytest

from repro.collectives import Autotuner, cost_table, des_time_schedule
from repro.hardware.cluster import HyadesCluster
from repro.network.costmodel import ARCTIC_GSUM_MEASURED

from _emit import emit_bench
from _tables import emit, format_table, us

SIZES = [8, 64, 1024, 8192, 65536, 524288]
NODE_COUNTS = (16, 64, 256)


def crossover_curves():
    """{N: {"costs": {alg: [s,...]}, "winner": [alg,...]}} over SIZES."""
    tuner = Autotuner()
    out = {}
    for n in NODE_COUNTS:
        table = cost_table("allreduce", n, SIZES)
        winners = [tuner.plan("allreduce", n, s).algorithm for s in SIZES]
        out[n] = {"costs": table, "winner": winners}
    return out


def test_bench_collectives_crossover(benchmark):
    t0 = time.perf_counter()
    curves = benchmark(crossover_curves)
    wall = time.perf_counter() - t0

    for n, cur in curves.items():
        rows = []
        algs = sorted(cur["costs"])
        for i, size in enumerate(SIZES):
            rows.append(
                [str(size)]
                + [us(cur["costs"][a][i]) for a in algs]
                + [cur["winner"][i]]
            )
        emit(
            f"collectives_n{n}",
            format_table(
                f"allreduce cost vs size at N={n} (usec)",
                ["bytes"] + algs + ["winner"],
                rows,
            ),
        )

    # The headline: the tuner switches algorithms along the size axis.
    for n in NODE_COUNTS:
        winners = curves[n]["winner"]
        assert winners[0] == "butterfly", "small messages must pick butterfly"
        assert len(set(winners)) >= 2, f"no crossover at N={n}"
        assert winners[-1] != "butterfly", "large messages must switch"

    # DES cross-validation of the winning schedules at N=16.
    tuner = Autotuner()
    crossval = {}
    for size in (8, 1024, 65536):
        plan = tuner.plan("allreduce", 16, size)
        cv = tuner.crossvalidate(plan, HyadesCluster())
        crossval[size] = {"algorithm": plan.algorithm, **cv}
        assert cv["rel_err"] <= 0.10, (size, cv)
    # ... and the tuned doubleword gsum still hits the paper's Fig. 8.
    gsum16 = tuner.allreduce_time(16, 8)
    assert gsum16 == pytest.approx(ARCTIC_GSUM_MEASURED[16], rel=0.10)

    emit_bench(
        "collectives",
        wall_clock_s=wall,
        virtual_time_s=crossval[8]["des_s"],
        model_error={
            f"allreduce_16x{size}B": cv["rel_err"]
            for size, cv in crossval.items()
        },
        data={
            "sizes_bytes": SIZES,
            "curves_us": {
                str(n): {
                    a: [c * 1e6 for c in cur["costs"][a]]
                    for a in cur["costs"]
                }
                for n, cur in curves.items()
            },
            "winners": {str(n): cur["winner"] for n, cur in curves.items()},
            "crossval_16": {
                str(size): {
                    "algorithm": cv["algorithm"],
                    "predicted_us": cv["predicted_s"] * 1e6,
                    "des_us": cv["des_s"] * 1e6,
                    "rel_err": cv["rel_err"],
                }
                for size, cv in crossval.items()
            },
            "gsum_16way_us": gsum16 * 1e6,
        },
        units={"virtual_time_s": "16-way 8B allreduce, DES seconds"},
    )


def test_bench_des_timing_16way(benchmark):
    from repro.collectives import build

    def one():
        return des_time_schedule(
            HyadesCluster(), build("allreduce", "butterfly", 16, 8)
        )

    t = benchmark(one)
    assert t == pytest.approx(ARCTIC_GSUM_MEASURED[16], rel=0.10)
