"""Section 2.2 — Arctic Switch Fabric properties.

Regenerates the fabric's advertised characteristics on the simulator:
<0.15 us per router stage, 150 MB/s per link direction, the fat-tree
bisection bandwidth, FIFO ordering and priority behaviour.
"""

import pytest

from repro.network.fattree import FatTree
from repro.network.packet import Packet, Priority
from repro.network.router import ARCTIC_LINK_BANDWIDTH, ARCTIC_STAGE_LATENCY
from repro.sim import Engine

from _tables import emit, format_table, mbs, us


def measure_stage_latency():
    """Head latency per link for the farthest pair in a 16-way tree."""
    eng = Engine()
    ft = FatTree(eng, 16)
    got = {}
    ft.attach_endpoint(15, lambda p: got.update(t=p.recv_time))
    for ep in range(15):
        ft.attach_endpoint(ep, lambda p: None)
    ft.inject(Packet(src=0, dst=15, payload_words=[0, 0]))
    eng.run()
    return got["t"] / ft.path_links(0, 15)


def measure_link_bandwidth(n_packets: int = 200):
    """Saturate one path with max-size packets; measure delivered rate."""
    eng = Engine()
    ft = FatTree(eng, 4)
    done = {}
    count = [0]

    def sink(p):
        count[0] += 1
        if count[0] == n_packets:
            done["t"] = eng.now

    ft.attach_endpoint(1, sink)
    for ep in (0, 2, 3):
        ft.attach_endpoint(ep, lambda p: None)
    for i in range(n_packets):
        ft.inject(Packet(src=0, dst=1, payload_words=[0] * 22, tag=i % 2048))
    eng.run()
    wire = 24 * 4  # bytes per packet on the wire
    return n_packets * wire / done["t"]


def test_bench_stage_latency(benchmark):
    t = benchmark(measure_stage_latency)
    assert t == pytest.approx(ARCTIC_STAGE_LATENCY, rel=1e-9)
    assert t <= 0.15e-6 + 1e-12


def test_bench_link_bandwidth(benchmark):
    bw = benchmark(measure_link_bandwidth)
    # steady-state delivered rate approaches the 150 MB/s link rate
    assert bw == pytest.approx(ARCTIC_LINK_BANDWIDTH, rel=0.02)


def test_bench_sec22_table(benchmark):
    stage = benchmark(measure_stage_latency)
    bw = measure_link_bandwidth()
    eng = Engine()
    ft = FatTree(eng, 16)
    emit(
        "sec22_arctic",
        format_table(
            "Section 2.2 - Arctic Switch Fabric: measured (paper)",
            ["quantity", "measured", "paper"],
            [
                ["router stage latency (us)", us(stage, 3), "<0.15"],
                ["link bandwidth (MB/s)", mbs(bw), "150 each direction"],
                [
                    "bisection bw, struct. min-cut (MB/s)",
                    mbs(ft.bisection_bandwidth()),
                    "2 x N x 150 (paper formula: "
                    + mbs(ft.paper_bisection_bandwidth())
                    + ")",
                ],
                ["16-endpoint fat-tree routers", str(len(ft.routers)), "N/2 per level x log2 N levels"],
            ],
        ),
    )
