"""Ablation — chunked copy/DMA overlap in the exchange (Section 4.1).

"For efficiency, the sender copies the data in several small chunks and
initiates DMA on a chunk immediately after each copy to overlap the DMA
transfer with the next round of copying."

Without the overlap, the copy (memory system, ~300 MB/s burst on the
PII for cached copies) and the DMA (120 MB/s PCI) serialize and the
effective rate collapses to their harmonic combination; with chunked
overlap the pipeline runs at the slower stage's rate minus per-chunk
invocation overhead — which is how the NIU's 120+ MB/s PCI DMA becomes
the paper's 110 MB/s delivered VI bandwidth.
"""

import pytest

from _tables import emit, format_table, mbs

COPY_BW = 300e6  # cached memcpy burst on the PII-class memory system
DMA_BW = 118e6  # StarT-X streaming DMA over 32-bit/33-MHz PCI
CHUNK_OVERHEAD = 0.36e-6 + 0.93e-6  # DMA kick (2 writes) + status poll


def serial_rate(nbytes: int) -> float:
    """Copy everything, then DMA everything."""
    t = nbytes / COPY_BW + nbytes / DMA_BW + CHUNK_OVERHEAD
    return nbytes / t


def overlapped_rate(nbytes: int, chunk: int) -> float:
    """Pipelined chunks: steady-state at the slower stage + per-chunk
    overhead; the first chunk's copy fills the pipeline."""
    n_chunks = max(1, -(-nbytes // chunk))
    t_copy = chunk / COPY_BW
    t_dma = chunk / DMA_BW + CHUNK_OVERHEAD
    t = t_copy + n_chunks * max(t_copy, t_dma)
    return nbytes / t


def test_bench_overlap_table(benchmark):
    nbytes = 64 * 1024

    def build():
        rows = [("no overlap (copy then DMA)", serial_rate(nbytes))]
        for chunk in (256, 1024, 2048, 8192, 32768):
            rows.append((f"overlapped, {chunk} B chunks", overlapped_rate(nbytes, chunk)))
        return rows

    rows = benchmark(build)
    emit(
        "ablation_chunk_overlap",
        format_table(
            "Section 4.1 ablation - copy/DMA pipelining, 64 KB block",
            ["strategy", "effective MB/s"],
            [[name, mbs(r)] for name, r in rows],
        ),
    )
    serial = rows[0][1]
    best = max(r for _, r in rows[1:])
    # overlap recovers most of the DMA rate; serialization loses ~30 %
    assert serial < 95e6
    assert best > 105e6
    # the sweet spot reproduces the paper's 110 MB/s delivered figure
    assert overlapped_rate(nbytes, 2048) == pytest.approx(110e6, rel=0.05)


def test_bench_chunk_size_tradeoff(benchmark):
    """Tiny chunks drown in per-chunk overhead; huge chunks lose the
    pipeline (first-copy latency and granularity)."""
    nbytes = 64 * 1024
    rates = benchmark(
        lambda: {c: overlapped_rate(nbytes, c) for c in (64, 256, 2048, 65536)}
    )
    assert rates[64] < rates[2048]
    assert rates[65536] < rates[2048]
