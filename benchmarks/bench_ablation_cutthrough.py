"""Ablation — cut-through vs store-and-forward routing (Section 2.2).

Arctic forwards a packet's head before its tail arrives (cut-through),
so multi-hop latency is ``hops x 0.15 us + one serialization``; a
store-and-forward design pays the serialization at *every* stage.  For
StarT-X's small packets the difference compounds over the fat tree's up
to eight link stages — part of how the fabric keeps the 8-byte
round-trip at 3.7 us and the butterfly global sum viable.
"""

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.network.router import ARCTIC_LINK_BANDWIDTH, ARCTIC_STAGE_LATENCY

from _tables import emit, format_table, us


def cut_through_latency(hops: int, wire_bytes: int) -> float:
    """Head pipelines: serialization paid once."""
    return hops * ARCTIC_STAGE_LATENCY + wire_bytes / ARCTIC_LINK_BANDWIDTH


def store_forward_latency(hops: int, wire_bytes: int) -> float:
    """Whole packet buffered at each stage."""
    return hops * (ARCTIC_STAGE_LATENCY + wire_bytes / ARCTIC_LINK_BANDWIDTH)


def measured_des_latency(src=0, dst=15, payload_words=2):
    """Full-packet arrival time on the DES (cut-through by construction)."""
    cluster = HyadesCluster()
    eng = cluster.engine
    out = {}

    def sender():
        yield from cluster.niu(src).pio_send(dst, [0] * payload_words)

    def receiver():
        pkt = yield from cluster.niu(dst).pio_recv()
        out["t"] = pkt.recv_time + pkt.wire_bytes / ARCTIC_LINK_BANDWIDTH

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    # subtract the sender's CPU time (2 writes) to isolate the fabric
    return out["t"] - 0.36e-6


def test_bench_cutthrough_table(benchmark):
    rows = []
    for name, wire in (("8 B payload (16 B wire)", 16), ("88 B payload (96 B wire)", 96)):
        ct = cut_through_latency(8, wire)
        sf = store_forward_latency(8, wire)
        rows.append([name, us(ct, 2), us(sf, 2), f"{sf / ct:.2f}x"])
    measured = benchmark(measured_des_latency)
    rows.append(["DES-measured (16 B wire, 8 links)", us(measured, 2), "-", "-"])
    emit(
        "ablation_cutthrough",
        format_table(
            "Ablation - cut-through vs store-and-forward, max-distance pair",
            ["packet", "cut-through", "store-and-forward", "penalty"],
            rows,
        ),
    )
    # the DES is cut-through: measured full-packet latency matches the
    # analytic cut-through figure
    assert measured == pytest.approx(cut_through_latency(8, 16), rel=0.02)
    # store-and-forward would more than triple max-size packet latency
    assert store_forward_latency(8, 96) > 3 * cut_through_latency(8, 96)


def test_bench_gsum_under_store_forward(benchmark):
    """What the 16-way global sum would cost without cut-through: the
    per-round wire latency grows by (hops-1) serializations."""

    def totals():
        ct = sf = 0.0
        for i in range(4):  # rounds with growing partner distance
            hops = 2 * (i + 1)
            ct += cut_through_latency(hops, 16) + 2.22e-6 + 2.0e-6  # + Os+Or + sw
            sf += store_forward_latency(hops, 16) + 2.22e-6 + 2.0e-6
        return ct, sf

    ct, sf = benchmark(totals)
    assert sf > ct
    # the penalty is real but modest for 16-byte packets (~0.1 us/hop);
    # for max-size packets it would dominate the round budget
    assert (sf - ct) / ct < 0.25
