"""Ensemble-service throughput: scenarios/hour through the full stack.

Drives a real :class:`repro.service.EnsembleService` (journal, spool
ingest, forked supervised workers) through a small OGCM parameter sweep
plus one deliberately flaky member, and prices the durable queue itself
(fsynced CRC-framed journal appends).  The scenarios/hour figure is the
paper's Fig. 11 ensemble economics restated for the reproduction's
tiny models: how fast the service can turn around independent scenario
jobs while keeping every lifecycle transition crash-safe on disk.

Emits ``BENCH_service.json``.
"""

import pathlib
import tempfile
import time

from repro.service import (
    EnsembleService,
    JobQueue,
    JobSpec,
    Journal,
    ServiceClient,
    ServiceConfig,
    SupervisorConfig,
)

from _emit import emit_bench
from _tables import emit, format_table

N_OCEAN = 10


def sweep_specs():
    specs = [
        JobSpec(
            kind="ocean",
            name=f"bench-{i:02d}",
            params={
                "nx": 16, "ny": 8, "nz": 3, "dt": 1200.0, "steps": 8,
                "perturb_seed": i, "perturb_amp": 0.01,
            },
        )
        for i in range(N_OCEAN)
    ]
    specs.append(
        JobSpec(kind="flaky", name="bench-flaky", params={"fails_before": 1})
    )
    return specs


def run_ensemble():
    """One drained sweep through the real service; returns the summary."""
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    client = ServiceClient(root)
    client.submit_many(sweep_specs())
    config = ServiceConfig(
        supervisor=SupervisorConfig(
            max_workers=4, backoff_base_s=0.05, backoff_cap_s=0.2
        )
    )
    service = EnsembleService(root, config)
    service.startup()
    summary = service.serve(drain=True, max_wall_s=120.0)
    return summary, client.status()


def journal_append_cost(n=200):
    """Mean seconds per fsynced journal append (the durability tax)."""
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-journal-"))
    journal = Journal(root / "journal.bin")
    journal.open()
    queue = JobQueue(journal)
    queue.replay()
    t0 = time.perf_counter()
    for i in range(n):
        queue.submit(JobSpec(kind="sleep", name=f"j{i}", params={"i": i}))
    per_append = (time.perf_counter() - t0) / n
    journal.close()
    return per_append


def test_bench_service_throughput(benchmark):
    t0 = time.perf_counter()
    summary, states = benchmark(run_ensemble)
    wall = time.perf_counter() - t0

    n_jobs = N_OCEAN + 1
    assert summary["submitted"] == n_jobs
    assert summary["completed"] == n_jobs, states
    assert summary["quarantined"] == 0
    assert summary["retries"] >= 1, "the flaky member must have retried"
    digests = {s["job_id"]: s["digest"] for s in states.values()
               if s["kind"] == "ocean"}
    assert len(digests) == N_OCEAN and all(digests.values())

    per_append = journal_append_cost()

    emit(
        "service_throughput",
        format_table(
            "ensemble service, drained sweep",
            ["quantity", "value"],
            [
                ["jobs", str(n_jobs)],
                ["completed", str(summary["completed"])],
                ["retries", str(summary["retries"])],
                ["scenarios/hour", f"{summary['scenarios_per_hour']:.0f}"],
                ["journal append (us)", f"{per_append * 1e6:.0f}"],
            ],
        ),
    )
    emit_bench(
        "service",
        wall_clock_s=wall,
        virtual_time_s=None,
        model_error=None,
        data={
            "n_jobs": n_jobs,
            "completed": summary["completed"],
            "quarantined": summary["quarantined"],
            "retries": summary["retries"],
            "worker_kills": summary["worker_kills"],
            "scenarios_per_hour": summary["scenarios_per_hour"],
            "journal_append_us": per_append * 1e6,
            "digests": digests,
        },
        units={
            "scenarios_per_hour": "drained sweep jobs per wall-clock hour",
            "journal_append_us": "mean fsynced CRC-framed append, usec",
        },
    )
