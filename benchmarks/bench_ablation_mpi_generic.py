"""Ablation — tailored primitives vs a general-purpose MPI layer.

Section 6: "in an application-specific cluster, there is little reason
to give up any performance for an API that is more general than
required."  This benchmark quantifies the generality tax on the same
simulated hardware: the custom butterfly global sum and VI exchange
against MPI-style allreduce/sendrecv (tag matching, bounce-buffer
copies, rendezvous) — and shows the tax, while real, is still small
next to the gap between interconnects.
"""

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.network.costmodel import arctic_cost_model, fast_ethernet_cost_model
from repro.parallel.des_collectives import des_global_sum
from repro.parallel.mpi import MPIComm

from _tables import emit, format_table, us


def mpi_allreduce_time(n=16):
    cluster = HyadesCluster()
    comm = MPIComm(cluster, n_ranks=n)
    done = {}

    def rank_proc(r):
        t0 = cluster.engine.now
        yield from comm.allreduce_sum(r, float(r))
        done[r] = cluster.engine.now - t0

    for r in range(n):
        cluster.engine.process(rank_proc(r))
    cluster.engine.run()
    return max(done.values())


def mpi_exchange_time(nbytes, a=0, b=1):
    """MPI-style neighbour exchange: sendrecv both directions."""
    cluster = HyadesCluster()
    comm = MPIComm(cluster, n_ranks=4)
    done = {}

    def node(r, peer):
        t0 = cluster.engine.now
        yield from comm.sendrecv(r, dest=peer, source=peer, nbytes=nbytes, tag=1)
        done[r] = cluster.engine.now - t0

    cluster.engine.process(node(a, b))
    cluster.engine.process(node(b, a))
    cluster.engine.run()
    return max(done.values())


def custom_gsum_time(n=16):
    cluster = HyadesCluster()
    _, t = des_global_sum(cluster, [float(i) for i in range(n)])
    return t


def test_bench_generality_tax_table(benchmark):
    t_mpi_gsum = benchmark.pedantic(mpi_allreduce_time, rounds=1, iterations=1)
    t_custom_gsum = custom_gsum_time()
    arctic = arctic_cost_model()
    fe = fast_ethernet_cost_model()
    t_mpi_exch_1k = mpi_exchange_time(1024)
    t_custom_exch_1k = 2 * arctic.transfer_time(1024)
    rows = [
        [
            "16-way global sum (us)",
            us(t_custom_gsum),
            us(t_mpi_gsum),
            f"{t_mpi_gsum / t_custom_gsum:.1f}x",
            us(fe.gsum_time(16), 0),
        ],
        [
            "1 KB neighbour exchange (us)",
            us(t_custom_exch_1k),
            us(t_mpi_exch_1k),
            f"{t_mpi_exch_1k / t_custom_exch_1k:.1f}x",
            "-",
        ],
    ]
    emit(
        "ablation_mpi_generic",
        format_table(
            "Ablation - custom primitives vs general-purpose MPI layer on Arctic",
            ["operation", "custom", "MPI layer", "tax", "MPI on FE (ref)"],
            rows,
        ),
    )
    # the generality tax is real...
    assert t_mpi_gsum > 1.5 * t_custom_gsum
    # ...but still an order of magnitude under commodity-interconnect MPI
    assert t_mpi_gsum < fe.gsum_time(16) / 5
    # a month of custom-primitive work buys back the factor (Section 6
    # footnote: "less than one-man month to develop the two primitives")
    assert t_mpi_exch_1k > t_custom_exch_1k


def test_bench_mpi_exchange_scales_with_size(benchmark):
    t1k = benchmark.pedantic(mpi_exchange_time, args=(1024,), rounds=1, iterations=1)
    t16k = mpi_exchange_time(16384)
    assert t16k > t1k
    # bulk MPI pays the bounce copies: effective bandwidth well under VI
    arctic = arctic_cost_model()
    assert 16384 / (t16k / 2) < 0.7 * arctic.perceived_bandwidth(16384)
