"""Recovery machinery priced in virtual time.

Two questions the self-healing runtime must answer quantitatively:

1. **What does surviving a crash cost?**  Sweep the checkpoint interval
   K: frequent checkpoints pay more steady-state tax but lose less
   recompute when a node dies; sparse checkpoints are cheap until the
   rollback bill arrives.  Every point recovers bit-exactly from the
   same mid-run crash.
2. **What does merely *arming* detection cost?**  The heartbeat beacons
   share the HIGH-priority network with coupling traffic; comparing a
   fault-free coupled run with and without the recovery runtime armed
   bounds the steady-state throughput tax.

Results land in ``benchmarks/out/BENCH_recovery.json`` (machine-readable)
and ``benchmarks/out/recovery_overhead.txt`` (the table).
"""

import time

from repro.faults import run_crash_recovery_demo
from repro.hardware.cluster import HyadesCluster, HyadesConfig
from repro.recover import RecoveryConfig

from _emit import emit_bench
from _tables import emit, format_table

WINDOWS = 4


def overhead_vs_interval(intervals=(1, 2, 3)):
    """One recovered crash per checkpoint interval K."""
    rows = []
    for k in intervals:
        res = run_crash_recovery_demo(windows=WINDOWS, checkpoint_interval=k)
        assert res.error is None, res.error
        assert res.bit_exact
        rows.append(
            {
                "interval": k,
                "bit_exact": res.bit_exact,
                "detection_latency_s": res.detection_latency,
                "restored_window": res.restored_window,
                "checkpoint_tax_s": res.checkpoint_tax,
                "rollback_cost_s": res.rollback_cost,
                "recompute_cost_s": res.recompute_cost,
                "total_overhead_s": res.total_overhead,
                "clean_run_s": res.engine_time_clean,
            }
        )
    return rows


def _coupled(cluster, recovery):
    from repro.gcm.atmosphere import atmosphere_model
    from repro.gcm.coupled import CouplerParams, DESCoupledModel
    from repro.gcm.ocean import ocean_model

    atm = atmosphere_model(nx=16, ny=8, nz=3, px=2, py=2, dt=600.0)
    ocn = ocean_model(nx=16, ny=8, nz=4, px=2, py=2, dt=600.0)
    return DESCoupledModel(
        atm, ocn, cluster, CouplerParams(coupling_interval=2),
        reliable=True, recovery=recovery,
    )


def heartbeat_tax(windows=3):
    """Fault-free coupled run: dense beacons vs beacons effectively off.

    Both runs use the identical recovery runtime (same phase machinery,
    same checkpoints); only the beacon period differs — 50 us (the
    production detector) against 2 ms (a handful of beacons per run) —
    so the virtual-time delta isolates the detection traffic's CPU and
    HIGH-priority wire contention.
    """
    from repro.recover import HeartbeatConfig

    def run(period, timeout):
        cluster = HyadesCluster(HyadesConfig(n_nodes=4))
        model = _coupled(
            cluster,
            recovery=RecoveryConfig(
                heartbeat=HeartbeatConfig(period=period, timeout=timeout)
            ),
        )
        model.run(windows)
        rep = model.recovery.overhead_report()
        return cluster.engine.now - rep["checkpoint_des_seconds"], rep

    t_off, _ = run(period=2e-3, timeout=10e-3)
    t_on, rep_on = run(period=50e-6, timeout=250e-6)
    return {
        "windows": windows,
        "beacons_off_s": t_off,
        "beacons_on_s": t_on,
        "heartbeat_tax_pct": 100.0 * (t_on - t_off) / t_off,
        "checkpoint_tax_s": rep_on["checkpoint_des_seconds"],
        "beacons_sent": rep_on["heartbeat"]["beacons_sent"],
    }


def test_bench_recovery_overhead():
    t0 = time.perf_counter()
    sweep = overhead_vs_interval()
    hb = heartbeat_tax()
    wall = time.perf_counter() - t0

    table = [
        [
            r["interval"],
            f"{r['detection_latency_s'] * 1e6:.0f}",
            r["restored_window"],
            f"{r['checkpoint_tax_s'] * 1e3:.2f}",
            f"{r['rollback_cost_s'] * 1e3:.2f}",
            f"{r['recompute_cost_s'] * 1e3:.2f}",
            f"{r['total_overhead_s'] * 1e3:.2f}",
            str(r["bit_exact"]),
        ]
        for r in sweep
    ]
    table.append(
        [
            "hb tax",
            "-",
            "-",
            f"{hb['checkpoint_tax_s'] * 1e3:.2f}",
            "-",
            "-",
            f"{hb['heartbeat_tax_pct']:+.2f}%",
            "-",
        ]
    )
    emit(
        "recovery_overhead",
        format_table(
            f"Self-healing overhead vs checkpoint interval K ({WINDOWS} windows, 1 crash)",
            ["K", "detect (us)", "rollback to w", "ckpt tax (ms)",
             "rollback (ms)", "recompute (ms)", "total (ms)", "bit-exact"],
            table,
        ),
    )
    emit_bench(
        "recovery",
        wall_clock_s=wall,
        virtual_time_s=sweep[0]["clean_run_s"],
        model_error={"heartbeat_tax": hb["heartbeat_tax_pct"] / 100.0},
        data={"overhead_vs_interval": sweep, "heartbeat_tax": hb},
        units={"virtual_time_s": "clean K=1 run, DES seconds"},
    )

    # Sanity: every crash recovered bit-exactly; detection is bounded.
    assert all(r["bit_exact"] for r in sweep)
    assert all(0 < r["detection_latency_s"] < 1e-3 for r in sweep)
    # Steady-state heartbeat tax stays small (well under 20 %).
    assert abs(hb["heartbeat_tax_pct"]) < 20.0
