"""Extension — the non-hydrostatic scenario under the performance model.

Section 6: "The MIT GCM algorithm is designed to apply to a wide
variety of geophysical fluid problems.  The performance model we have
derived is valid for all these scenarios."  The non-hydrostatic mode
replaces the 2-D DS solve with a 3-D Poisson solve whose per-iteration
communication is an order of magnitude larger (3-D width-1 halos), so
the PFPP analysis shifts: interconnect quality matters even more.
"""

import pytest

from repro.core.pfpp import pfpp_ds
from repro.gcm.ocean import ocean_model
from repro.network.costmodel import arctic_cost_model, gigabit_ethernet_cost_model
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table, us


def nh_comm_times(cost_model, nz=30, n_ranks=16):
    """(tgsum, texch 3-D width-1) for the non-hydrostatic solve."""
    d = Decomposition(128, 64, 4, 4, olx=3)
    mix = cost_model.name == "Arctic"
    texch = cost_model.exchange_time(
        d.edge_bytes(nz=nz, width=1, rank=5), mixmode=mix, n_ranks=n_ranks
    )
    n_g = 8 if cost_model.name == "Arctic" else 16
    tg = cost_model.gsum_time(n_g, smp=mix)
    return tg, texch


def test_bench_nh_pfpp_table(benchmark):
    """Pfpp of the 3-D solver iteration, per interconnect."""
    rows = []
    # counted ~36 flops/cell/iteration over nxyz cells per rank
    nds3, nxyz = 36, 128 * 64 * 30 // 16

    def build():
        out = {}
        for cm in (arctic_cost_model(), gigabit_ethernet_cost_model()):
            tg, tx = nh_comm_times(cm)
            out[cm.name] = (tg, tx, pfpp_ds(nds3, nxyz, tg, tx))
        return out

    out = benchmark(build)
    for name, (tg, tx, p) in out.items():
        rows.append([name, us(tg), us(tx), f"{p / 1e6:.1f}"])
    emit(
        "ext_nonhydrostatic",
        format_table(
            "Extension - non-hydrostatic (3-D) solver iteration, 1 deg-class ocean",
            ["interconnect", "tgsum (us)", "texch 3-D w1 (us)", "Pfpp,3-D solve (MF/s)"],
            rows,
        ),
    )
    # Arctic keeps the 3-D solve compute-bound; GE cannot
    assert out["Arctic"][2] > 60e6
    assert out["Gigabit Ethernet"][2] < 60e6


def test_bench_nh_step_cost_breakdown(benchmark):
    """End-to-end: the measured virtual cost of hydrostatic vs
    non-hydrostatic steps of the same configuration."""

    def run(nonhydro):
        m = ocean_model(
            nx=32, ny=16, nz=6, px=2, py=2, dt=600.0, nonhydrostatic=nonhydro
        )
        m.run(4)
        return m.performance_breakdown()

    bd_nh = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    bd_h = run(False)
    emit(
        "ext_nonhydrostatic_cost",
        format_table(
            "Extension - step cost, hydrostatic vs non-hydrostatic (virtual ms)",
            ["quantity", "hydrostatic", "non-hydrostatic"],
            [
                ["t_step (ms)", f"{bd_h['t_step'] * 1e3:.2f}", f"{bd_nh['t_step'] * 1e3:.2f}"],
                ["solver Ni (2-D)", f"{bd_h['ni']:.0f}", f"{bd_nh['ni']:.0f}"],
            ],
        ),
    )
    assert bd_nh["t_step"] > 2 * bd_h["t_step"]
