"""Fig. 7 — VI-mode transfer bandwidth as a function of block size.

Regenerates the full curve (4 B to 128 KB) by running one VI transfer
per block size on the simulated hardware, alongside the analytic model
``bw(s) = s / (8.6 us + s / 110 MB/s)`` that the paper quotes via its
56.8 MB/s @ 1 KB and 90 %-of-peak @ 9 KB data points.
"""

import pytest

from repro.network.costmodel import arctic_cost_model
from repro.parallel.des_collectives import des_transfer_bandwidth

from _tables import emit, format_table, mbs

#: The x-axis of Fig. 7 (bytes).
BLOCK_SIZES = [2 ** k for k in range(2, 18)]


def sweep(sizes=None):
    model = arctic_cost_model()
    rows = []
    for s in sizes or BLOCK_SIZES:
        measured = des_transfer_bandwidth(max(s, 4)) if s >= 64 else None
        rows.append((s, measured, model.perceived_bandwidth(s)))
    return rows


def test_bench_single_transfer_64k(benchmark):
    bw = benchmark(des_transfer_bandwidth, 65536)
    assert bw == pytest.approx(arctic_cost_model().perceived_bandwidth(65536), rel=0.05)


def test_bench_fig7_curve(benchmark):
    rows = benchmark(sweep, [256, 1024, 4096, 9216, 32768, 131072])
    full = sweep()
    table = [
        [s, mbs(m) if m else "-", mbs(a)]
        for s, m, a in full
    ]
    emit(
        "fig07_bandwidth",
        format_table(
            "Fig. 7 - exchange transfer bandwidth vs block size",
            ["block (B)", "DES measured (MB/s)", "analytic model (MB/s)"],
            table,
        ),
    )
    # paper's quoted points
    model = arctic_cost_model()
    assert model.perceived_bandwidth(1024) == pytest.approx(56.8e6, rel=0.02)
    assert model.perceived_bandwidth(9 * 1024) >= 0.9 * 110e6
    # DES tracks the model across the sweep
    for s, measured, analytic in rows:
        assert measured == pytest.approx(analytic, rel=0.10)
    # curve is monotone and saturates near 110 MB/s
    analytic_curve = [a for _, _, a in full]
    assert analytic_curve == sorted(analytic_curve)
    assert analytic_curve[-1] > 0.95 * 110e6
