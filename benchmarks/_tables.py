"""Shared table formatting/saving for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and writes
it under ``benchmarks/out/`` (also echoed to stdout with ``pytest -s``).
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

OUT_DIR = pathlib.Path(__file__).parent / "out"


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def emit(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/out/."""
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text)


def us(seconds: float, digits: int = 1) -> str:
    return f"{seconds * 1e6:.{digits}f}"


def mbs(bytes_per_s: float, digits: int = 1) -> str:
    return f"{bytes_per_s / 1e6:.{digits}f}"


def mflops(flops_per_s: float, digits: int = 1) -> str:
    return f"{flops_per_s / 1e6:.{digits}f}"
