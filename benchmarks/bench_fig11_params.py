"""Fig. 11 — performance-model parameters of the coupled simulation.

Regenerates every cell: nxyz/nxy from the decomposition, texch/tgsum
from the interconnect cost model (first-principles composition), and
Nps/Nds by counted kernel inspection of one real model step — printed
against the paper's measured values.
"""

import pytest

from repro.core.constants import ATM_PS_PARAMS, DS_PARAMS, OCN_PS_PARAMS
from repro.network.costmodel import arctic_cost_model
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table, us


def modelled_comm_params():
    """(texchxyz_atm, texchxyz_ocn, texchxy_ds, tgsum) from the models."""
    cm = arctic_cost_model()
    ps = Decomposition(128, 64, 4, 4, olx=3)
    ds = Decomposition(128, 64, 2, 4, olx=1)
    t_atm = cm.exchange_time(ps.edge_bytes(nz=10, rank=5), mixmode=True)
    t_ocn = cm.exchange_time(ps.edge_bytes(nz=30, rank=5), mixmode=True)
    ds_rank = max(range(8), key=lambda r: sum(ds.edge_bytes(nz=1, width=1, rank=r)))
    t_ds = cm.exchange_time(ds.edge_bytes(nz=1, width=1, rank=ds_rank))
    t_g = cm.gsum_time(8, smp=True)
    return t_atm, t_ocn, t_ds, t_g


def counted_kernel_flops(nz=10, steps=2):
    """Count Nps (flops/cell/PS pass) and Nds (flops/column/iteration)
    from an actual model integration at the reference lateral grid."""
    from repro.gcm.atmosphere import atmosphere_model

    m = atmosphere_model(nx=64, ny=32, nz=nz, px=2, py=2, dt=200.0)
    m.run(steps)
    h = m.history[-1]
    cells = 64 * 32 * nz
    cols = 64 * 32
    nps = h.flops_ps / cells
    nds = h.flops_ds / max(h.ni, 1) / cols
    return nps, nds, h.ni


def test_bench_comm_parameters(benchmark):
    t_atm, t_ocn, t_ds, t_g = benchmark(modelled_comm_params)
    assert t_atm == pytest.approx(ATM_PS_PARAMS.texchxyz, rel=0.03)
    assert t_ocn == pytest.approx(OCN_PS_PARAMS.texchxyz, rel=0.03)
    assert t_ds == pytest.approx(DS_PARAMS.texchxy, rel=0.08)
    assert t_g == pytest.approx(DS_PARAMS.tgsum, rel=0.01)


def test_bench_counted_flops(benchmark):
    nps, nds, ni = benchmark.pedantic(counted_kernel_flops, rounds=1, iterations=1)
    # Our NumPy kernel runs a leaner numerical recipe than the 1999
    # Fortran model (2nd-order advection, linear EOS, lighter physics):
    # the counted Nps lands in the low hundreds vs the paper's 781.
    assert 150 < nps < 800
    assert 10 < nds < 60


def test_bench_fig11_table(benchmark):
    t_atm, t_ocn, t_ds, t_g = benchmark(modelled_comm_params)
    nps, nds, ni = counted_kernel_flops()
    rows = [
        ["Nps (atmos, flops/cell)", f"{nps:.0f} (counted)", f"{ATM_PS_PARAMS.nps}"],
        ["nxyz (atmos)", "5120 (128x64x10 / 16)", f"{ATM_PS_PARAMS.nxyz}"],
        ["texchxyz atmos (us)", us(t_atm), us(ATM_PS_PARAMS.texchxyz)],
        ["Fps (MFlop/s)", "50 (adopted)", "50"],
        ["nxyz (ocean)", "15360 (128x64x30 / 16)", f"{OCN_PS_PARAMS.nxyz}"],
        ["texchxyz ocean (us)", us(t_ocn), us(OCN_PS_PARAMS.texchxyz)],
        ["Nds (flops/col/iter)", f"{nds:.0f} (counted)", f"{DS_PARAMS.nds}"],
        ["nxy (per master)", "1024 (128x64 / 8)", f"{DS_PARAMS.nxy}"],
        ["tgsum 2x8-way (us)", us(t_g), us(DS_PARAMS.tgsum)],
        ["texchxy (us)", us(t_ds), us(DS_PARAMS.texchxy)],
        ["Fds (MFlop/s)", "60 (adopted)", "60"],
    ]
    emit(
        "fig11_params",
        format_table(
            "Fig. 11 - performance model parameters: reproduction vs paper",
            ["parameter", "reproduction", "paper"],
            rows,
        ),
    )
