"""Cross-validation — BSP cost accounting vs packet-level simulation.

The GCM charges its communication from the analytic cost models; the
microbenchmarks validate those models point-by-point.  This benchmark
closes the loop end-to-end: it replays the *exact communication
pattern* of one model time step (five 3-D halo exchanges, then Ni
iterations of [one 2-field 2-D exchange + two global sums]) message by
message on the discrete-event cluster, and compares the elapsed DES
time against the lockstep runtime's charge for the same step.

The DES enacts wire traffic but not the strided pack/unpack memcpy
(that is host memory work), so the apples-to-apples comparison is
against the cost model with the copy term removed; the full charge is
also shown.
"""

import dataclasses

import pytest

from repro.hardware.cluster import HyadesCluster
from repro.network.costmodel import arctic_cost_model
from repro.parallel.des_collectives import des_exchange, des_global_sum
from repro.parallel.tiling import Decomposition

from _tables import emit, format_table

MS = 1e-3


def des_replay_step(nz=8, ni=20, n_nodes=4):
    """Replay one step's comm pattern on the DES; return elapsed.

    One representative node's sequence is the critical path (congruent
    tiles): per neighbour, the exchange primitive's two sequential
    opposite transfers — exactly what ``des_exchange`` runs.
    """
    d = Decomposition(64, 32, 2, 2, olx=3)
    elapsed = 0.0
    edges3 = d.edge_bytes(nz=nz, rank=3)
    for _field in range(5):
        for nbytes in edges3:
            if nbytes:
                elapsed += des_exchange(HyadesCluster(), 0, 1, nbytes)
    edges2 = d.edge_bytes(nz=1, width=1, rank=3)
    for _it in range(ni):
        for _field in range(2):
            for nbytes in edges2:
                if nbytes:
                    elapsed += des_exchange(HyadesCluster(), 0, 1, nbytes)
        for _g in range(2):
            _, t = des_global_sum(HyadesCluster(), [1.0] * n_nodes)
            elapsed += t
    return elapsed


def bsp_charge(nz=8, ni=20, n_nodes=4, include_pack=True):
    """The lockstep runtime's charge for the same pattern (1 CPU/node)."""
    cm = arctic_cost_model()
    if not include_pack:
        cm = dataclasses.replace(cm, copy_bandwidth=None)
    d = Decomposition(64, 32, 2, 2, olx=3)
    edges3 = d.edge_bytes(nz=nz, rank=3)
    edges2 = d.edge_bytes(nz=1, width=1, rank=3)
    t = 5 * cm.exchange_time(edges3, mixmode=False)
    t += ni * (2 * cm.exchange_time(edges2, mixmode=False) + 2 * cm.gsum_time(n_nodes))
    return t


def test_bench_crossvalidation(benchmark):
    t_des = benchmark.pedantic(des_replay_step, rounds=1, iterations=1)
    t_wire = bsp_charge(include_pack=False)
    t_full = bsp_charge(include_pack=True)
    emit(
        "crossvalidation",
        format_table(
            "Cross-validation - one step's comm: packet-level DES vs BSP charge",
            ["path", "time (ms)", "method"],
            [
                ["DES replay", f"{t_des / MS:.3f}", "every packet through routers/NIUs"],
                ["BSP charge, wire only", f"{t_wire / MS:.3f}", "cost model minus pack/unpack"],
                ["BSP charge, full", f"{t_full / MS:.3f}", "cost model incl. host memcpy"],
                ["wire agreement", f"{t_des / t_wire:.3f}x", "-"],
            ],
        ),
    )
    assert t_des == pytest.approx(t_wire, rel=0.10)
    assert t_full > t_wire  # the pack term is a real, separate cost


def test_bench_crossvalidation_scales_with_ni(benchmark):
    def ratio(ni):
        return des_replay_step(ni=ni) / bsp_charge(ni=ni, include_pack=False)

    r = benchmark.pedantic(ratio, args=(10,), rounds=1, iterations=1)
    r40 = ratio(40)
    assert abs(r - 1.0) < 0.12
    assert abs(r40 - 1.0) < 0.12
