"""The fidelity-switchable backend priced in host wall-clock.

Two claims the backend API makes, both measured live here:

1. **The cheap tiers are honest.**  ``repro.backend.run_crossval``
   replays the Fig. 2 / Fig. 8 / Fig. 9 workloads on all three tiers
   and asserts the analytic and hybrid quotes sit within the 5 % band
   of the packet-exact DES quotes — with bit-identical GCM state
   digests, since fidelity only changes *when* phases are charged,
   never *what* the model computes.

2. **The cheap tiers are fast.**  The Fig. 9 coupled benchmark on the
   analytic tier must beat the *seed* DES path by >= 10x wall-clock.
   The seed path is reconstructed live (not quoted from a stale
   number): before the backend API existed, packet-exact phase costs
   could only come from running the DES fabric fresh for every quote
   (exactly how the seed's fig02/fig08 benchmarks price collectives —
   no memoization anywhere), so the baseline couples
   :class:`ColdDESBackend` (fresh simulation per quote) with
   :func:`seed_hot_paths`, which temporarily restores the
   pre-optimization kernels — ``np.roll`` shifted views, unfused face
   divergences, the per-tile CG reference loop, and the event loop
   that re-read the tracer hook on every event.  Both sides of the
   ratio run on the same host in the same process.

The large-N story lands in the same record: the weak-scaling sweep of
Fig. 11 reaches N = 4096 in milliseconds on the analytic tier, while
the DES tier is measured only at the small N where instantiating the
fat tree is still feasible (its wall-clock growth across those points
is the infeasibility argument, made quantitatively).

Results land in ``benchmarks/out/BENCH_backend.json``.
"""

import contextlib
import heapq
import time

import numpy as np

from repro.backend import resolve_backend, run_crossval, sweep_point
from repro.backend.des import DESBackend
from repro.gcm.coupled import coupled_model
from repro.service.jobs import model_digest

from _emit import emit_bench
from _tables import emit, format_table

#: The Fig. 9 reduced coupled configuration (same as bench_fig09_coupled).
FIG09 = dict(
    nx=32, ny=16, nz_atm=5, nz_ocn=8, px=2, py=2, dt=300.0, coupling_interval=2
)
WINDOWS = 3

#: Weak-scaling sweep points; DES is attempted only up to the feasibility
#: cutoff (N = 1024 already costs ~40 s of host time per point).
SWEEP_N_VALUES = (16, 256, 1024, 4096)
DES_FEASIBLE_MAX_N = 256

#: The acceptance floor: analytic tier vs the seed DES path on Fig. 9.
SPEEDUP_FLOOR = 10.0


class ColdDESBackend(DESBackend):
    """Seed-faithful DES quoting: a fresh packet simulation per query.

    The memoized quote cache is the backend API's contribution; the
    seed revision re-ran the fabric for every measurement, which is
    what this subclass reproduces by clearing the memo before each
    quote.
    """

    def exchange_time(self, edge_bytes, mixmode=False, n_ranks=1):
        """Uncached exchange quote (fresh simulation)."""
        self._pair.clear()
        self._gsum.clear()
        return super().exchange_time(edge_bytes, mixmode=mixmode, n_ranks=n_ranks)

    def gsum_time(self, n_nodes, nbytes=8, smp=False):
        """Uncached global-sum quote (fresh simulation)."""
        self._pair.clear()
        self._gsum.clear()
        return super().gsum_time(n_nodes, nbytes, smp=smp)

    def barrier_time(self, n_nodes):
        """Uncached barrier quote (fresh simulation)."""
        self._pair.clear()
        self._gsum.clear()
        return super().barrier_time(n_nodes)


@contextlib.contextmanager
def seed_hot_paths():
    """Temporarily restore the seed revision's hot paths.

    Every GCM kernel reads the stencil operators as module attributes
    (``op.xm`` etc.), so rebinding them here is enough to put the whole
    model back on the seed arithmetic: ``np.roll`` shifted views (same
    wrap semantics, extra full-array temporaries) and the unfused face
    divergence.  The CG solver is forced onto its per-tile reference
    loop, and the DES dispatch loop is restored to the peek-then-pop
    form that re-read the tracer hook on every event.  All results are
    bit-identical either way — only wall-clock moves.
    """
    from repro.gcm import cg
    from repro.gcm import operators as op
    from repro.obs import trace as obs_trace
    from repro.sim.engine import DeadlockError, Engine

    def xm(a):
        """Seed shifted view: value at i-1 via np.roll."""
        return np.roll(a, 1, axis=-1)

    def xp(a):
        """Seed shifted view: value at i+1 via np.roll."""
        return np.roll(a, -1, axis=-1)

    def ym(a):
        """Seed shifted view: value at j-1 via np.roll."""
        return np.roll(a, 1, axis=-2)

    def yp(a):
        """Seed shifted view: value at j+1 via np.roll."""
        return np.roll(a, -1, axis=-2)

    def face_divergence(fx, fy):
        """Seed (unfused) face divergence: one temporary per term."""
        return (op.xp(fx) - fx) + (op.yp(fy) - fy)

    def seed_run(self, until=None, max_events=None, watchdog=False, stop_when=None):
        """The seed revision's dispatch loop (peek first, tracer every event)."""
        hit_cap = False
        while self._heap:
            if stop_when is not None and stop_when():
                return self._now
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            self._nevents += 1
            fn()
            tr = obs_trace.TRACER
            if tr is not None and self._nevents % 64 == 0:
                tr.counter(
                    "engine",
                    "events",
                    self._now,
                    {"pending": len(self._heap), "executed": self._nevents},
                )
            if max_events is not None and self._nevents >= max_events:
                hit_cap = True
                break
        if watchdog and not self._heap and not hit_cap:
            if not (stop_when is not None and stop_when()):
                blocked = self.blocked_processes()
                if blocked:
                    raise DeadlockError(blocked, crashed=self.crashed_nodes)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    saved_ops = (op.xm, op.xp, op.ym, op.yp, op.face_divergence)
    saved_run = Engine.run
    saved_force = cg.FORCE_REFERENCE
    op.xm, op.xp, op.ym, op.yp = xm, xp, ym, yp
    op.face_divergence = face_divergence
    Engine.run = seed_run
    cg.FORCE_REFERENCE = True
    try:
        yield
    finally:
        op.xm, op.xp, op.ym, op.yp, op.face_divergence = saved_ops
        Engine.run = saved_run
        cg.FORCE_REFERENCE = saved_force


def run_des_reliable_fig09(windows=WINDOWS):
    """The seed's Fig. 9 DES path: coupling fields on the reliable wire."""
    from repro.gcm.atmosphere import atmosphere_model
    from repro.gcm.coupled import CouplerParams, DESCoupledModel
    from repro.gcm.ocean import ocean_model
    from repro.hardware.cluster import HyadesCluster, HyadesConfig

    cluster = HyadesCluster(HyadesConfig(n_nodes=FIG09["px"] * FIG09["py"]))
    atm = atmosphere_model(
        nx=FIG09["nx"], ny=FIG09["ny"], nz=FIG09["nz_atm"],
        px=FIG09["px"], py=FIG09["py"], dt=FIG09["dt"],
    )
    ocn = ocean_model(
        nx=FIG09["nx"], ny=FIG09["ny"], nz=FIG09["nz_ocn"],
        px=FIG09["px"], py=FIG09["py"], dt=FIG09["dt"],
    )
    cm = DESCoupledModel(
        atm, ocn, cluster,
        CouplerParams(coupling_interval=FIG09["coupling_interval"]),
        reliable=True,
    )
    cm.run(windows)
    return cm


def run_tier_fig09(backend, windows=WINDOWS):
    """Fig. 9 coupled run with phase costs quoted by ``backend``."""
    cm = coupled_model(backend=backend, **FIG09)
    cm.run(windows)
    return cm


def _timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - t0, out


def _digest(cm):
    return model_digest(cm.atmosphere) + "+" + model_digest(cm.ocean)


def sweep_rows():
    """Per-tier wall-clock and error-vs-DES over the weak-scaling sweep."""
    rows = []
    for n in SWEEP_N_VALUES:
        row = {"n_nodes": n}
        des_row = None
        if n <= DES_FEASIBLE_MAX_N:
            des_row = sweep_point(n, resolve_backend("des"))
            row["des_wall_s"] = des_row["wall_s"]
        else:
            row["des_wall_s"] = None  # infeasible: see DES_FEASIBLE_MAX_N
        for tier in ("analytic", "hybrid"):
            r = sweep_point(n, resolve_backend(tier))
            row[f"{tier}_wall_s"] = r["wall_s"]
            row[f"{tier}_tgsum_s"] = r["tgsum_s"]
            if des_row is not None:
                row[f"{tier}_rel_err_tgsum"] = (
                    abs(r["tgsum_s"] - des_row["tgsum_s"]) / des_row["tgsum_s"]
                )
                row[f"{tier}_rel_err_texchxyz"] = (
                    abs(r["texchxyz_s"] - des_row["texchxyz_s"])
                    / des_row["texchxyz_s"]
                )
        rows.append(row)
    return rows


def test_bench_backend_tiers(benchmark):
    """Tentpole numbers: >= 10x vs the seed DES path, N = 4096 reachable."""
    # -- Fig. 9, seed DES path, reconstructed live: packet-exact costs
    #    from a fresh simulation per quote, on the seed kernels --------
    with seed_hot_paths():
        seed_wall, seed_cm = _timed(run_tier_fig09, ColdDESBackend())
    # -- Fig. 9, current code: wire-coupled DES path + the three tiers -
    cur_des_wall, cur_des_cm = _timed(run_des_reliable_fig09)
    tier_wall, tier_digest = {}, {}
    t0 = time.perf_counter()
    cm = benchmark.pedantic(run_tier_fig09, args=("analytic",), rounds=1, iterations=1)
    tier_wall["analytic"] = time.perf_counter() - t0
    tier_digest["analytic"] = _digest(cm)
    for tier in ("des", "hybrid"):
        tier_wall[tier], cm = _timed(run_tier_fig09, tier)
        tier_digest[tier] = _digest(cm)
    # fidelity never touches state: every path lands on one digest
    assert _digest(seed_cm) == _digest(cur_des_cm)
    assert len(set(tier_digest.values())) == 1
    speedup = seed_wall / tier_wall["analytic"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"analytic tier {tier_wall['analytic']:.3f}s vs seed DES "
        f"{seed_wall:.3f}s = {speedup:.1f}x < {SPEEDUP_FLOOR}x"
    )
    # -- cross-validation gate ----------------------------------------
    report = run_crossval(windows=2)
    assert report["passed"], f"crossval gate failed: {report}"
    # -- large-N sweep ------------------------------------------------
    rows = sweep_rows()
    big = rows[-1]
    assert big["n_nodes"] == 4096 and big["analytic_wall_s"] < 5.0
    emit(
        "backend_tiers",
        format_table(
            "Fidelity tiers - Fig. 9 wall-clock and the large-N sweep",
            ["quantity", "value", "context"],
            [
                ["seed DES path (fig09)", f"{seed_wall:.2f} s", "cold quotes + seed kernels"],
                ["wire-coupled DES run", f"{cur_des_wall:.2f} s", "hot paths flattened"],
                ["des tier", f"{tier_wall['des']:.2f} s", "memoized packet-exact quotes"],
                ["analytic tier", f"{tier_wall['analytic']:.2f} s", f"{speedup:.1f}x vs seed"],
                ["hybrid tier", f"{tier_wall['hybrid']:.2f} s", "analytic steady-state"],
                ["crossval max err", f"{report['max_rel_err'] * 100:.2f} %", "<= 5 % band"],
                ["sweep N=4096 (analytic)", f"{big['analytic_wall_s'] * 1e3:.0f} ms", "DES infeasible"],
            ],
        ),
    )
    emit_bench(
        "backend",
        wall_clock_s=seed_wall + cur_des_wall + sum(tier_wall.values()),
        virtual_time_s=cm.elapsed,
        model_error={"crossval_max_rel_err": report["max_rel_err"]},
        data={
            "fig09": {
                "windows": WINDOWS,
                "seed_des_wall_s": seed_wall,
                "wire_coupled_des_wall_s": cur_des_wall,
                "tier_wall_s": tier_wall,
                "speedup_analytic_vs_seed_des": speedup,
                "digests_bit_exact": True,
            },
            "crossval": {
                "n_checks": report["n_checks"],
                "max_rel_err": report["max_rel_err"],
                "bit_exact": report["bit_exact"],
            },
            "sweep": rows,
            "des_feasible_max_n": DES_FEASIBLE_MAX_N,
        },
        units={"virtual_time_s": "BSP critical-path seconds"},
    )
