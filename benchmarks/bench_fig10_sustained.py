"""Fig. 10 — sustained performance of the ocean isomorph.

Regenerates the table: vector-machine reference rows plus the Hyades
rows computed from the performance model, and cross-checks the computed
single-processor rate against a real (small) serial integration's
flop-weighted rate.
"""

import pytest

from repro.core.constants import HYADES_16CPU_SUSTAINED, HYADES_1CPU_SUSTAINED
from repro.core.sustained import fig10_table, hyades_sustained

from _tables import emit, format_table


def test_bench_hyades_rows(benchmark):
    res = benchmark(hyades_sustained, 16)
    assert 0.55e9 < res.sustained_flops < 0.9e9


def test_bench_fig10_table(benchmark):
    rows = benchmark(fig10_table)
    table = []
    for r in rows:
        paper = r.get("paper_gflops")
        table.append(
            [
                r["machine"],
                r["processors"],
                f"{r['sustained_gflops']:.3f}",
                f"{paper:.3f}" if paper else "-",
                r["source"],
            ]
        )
    emit(
        "fig10_sustained",
        format_table(
            "Fig. 10 - sustained GFlop/s, ocean isomorph (coarse resolution)",
            ["machine", "CPUs", "GFlop/s", "paper", "source"],
            table,
        ),
    )
    ours = {(r["machine"], r["processors"]): r["sustained_gflops"] for r in rows}
    assert ours[("Hyades", 1)] == pytest.approx(HYADES_1CPU_SUSTAINED / 1e9, rel=0.08)
    # shape: 16-CPU Hyades comparable to a single vector CPU, well below
    # a 4-CPU vector machine
    assert ours[("Cray Y-MP", 1)] * 0.8 < ours[("Hyades", 16)] < ours[("Cray C90", 4)]
    # parallel speedup near the paper's "fifteen times"
    assert 10 < ours[("Hyades", 16)] / ours[("Hyades", 1)] < 16


def test_bench_speedup_vs_gcm_run(benchmark):
    """Cross-check: the lockstep-runtime GCM on 16 vs 1 ranks shows the
    same speedup regime as the model-derived Fig. 10 rows."""
    from repro.gcm.ocean import ocean_model

    def run(px, py, cpn):
        m = ocean_model(nx=64, ny=32, nz=8, px=px, py=py, dt=900.0, cpus_per_node=cpn)
        m.run(3)
        return m.runtime.sustained_flops()

    s16 = benchmark.pedantic(run, args=(4, 4, 2), rounds=1, iterations=1)
    s1 = run(1, 1, 1)
    assert 6 < s16 / s1 < 16.5
