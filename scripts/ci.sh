#!/usr/bin/env bash
# Continuous-integration entry point: the tier-1 test suite plus a fast
# seeded fault-injection smoke test of the headline reliability demo.
#
# Usage: scripts/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if command -v ruff >/dev/null 2>&1; then
  echo "== ruff lint =="
  ruff check src tests
else
  echo "== ruff lint == (skipped: ruff not installed)"
fi

echo
echo "== tier-1 test suite =="
python -m pytest -x -q "$@" tests/

echo
echo "== seeded fault smoke (reliable recovery must stay bit-exact) =="
python -m repro faults --seed 7 --drop 0.01 --corrupt 0.002 --windows 1

echo
echo "== seeded fault smoke (no-retry must produce the watchdog diagnostic) =="
python -m repro faults --seed 7 --drop 0.02 --windows 1 --no-retry

echo
echo "== crash-recovery smoke (mid-run node death must self-heal bit-exact) =="
python -m repro faults --crash 1@auto | tee fault_recovery_report.txt

echo
echo "== crash-recovery smoke (no-recover must fail with a structured error) =="
python -m repro faults --crash 1@auto --no-recover | tee -a fault_recovery_report.txt

echo
echo "ci.sh: all checks passed"
