#!/usr/bin/env bash
# Continuous-integration entry point: the tier-1 test suite plus a fast
# seeded fault-injection smoke test of the headline reliability demo.
#
# Usage: scripts/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q "$@" tests/

echo
echo "== seeded fault smoke (reliable recovery must stay bit-exact) =="
python -m repro faults --seed 7 --drop 0.01 --corrupt 0.002 --windows 1

echo
echo "== seeded fault smoke (no-retry must produce the watchdog diagnostic) =="
python -m repro faults --seed 7 --drop 0.02 --windows 1 --no-retry

echo
echo "ci.sh: all checks passed"
