#!/usr/bin/env bash
# Continuous-integration entry point: the tier-1 test suite plus a fast
# seeded fault-injection smoke test of the headline reliability demo.
#
# Usage: scripts/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if command -v ruff >/dev/null 2>&1; then
  echo "== ruff lint =="
  ruff check src tests
else
  echo "== ruff lint == (skipped: ruff not installed)"
fi

echo
echo "== tier-1 test suite =="
python -m pytest -x -q "$@" tests/

echo
echo "== seeded fault smoke (reliable recovery must stay bit-exact) =="
python -m repro faults --seed 7 --drop 0.01 --corrupt 0.002 --windows 1

echo
echo "== seeded fault smoke (no-retry must produce the watchdog diagnostic) =="
python -m repro faults --seed 7 --drop 0.02 --windows 1 --no-retry

echo
echo "== crash-recovery smoke (mid-run node death must self-heal bit-exact) =="
python -m repro faults --crash 1@auto | tee fault_recovery_report.txt

echo
echo "== crash-recovery smoke (no-recover must fail with a structured error) =="
python -m repro faults --crash 1@auto --no-recover | tee -a fault_recovery_report.txt

echo
echo "== traced smoke (Chrome trace JSON must validate against the schema) =="
python -m repro trace /tmp/trace_smoke.json --windows 1
python - <<'PY'
import json

from repro.obs.schema import assert_valid, validate_chrome_trace

with open("/tmp/trace_smoke.json") as fh:
    obj = json.load(fh)
assert_valid(validate_chrome_trace(obj), "trace smoke")
print(f"trace smoke: {len(obj['traceEvents'])} events validate")
PY

echo
echo "== backend cross-validation gate (cheap tiers within 5% of DES) =="
python -m repro backend --crossval

echo
echo "== fault-campaign smoke (bit-exact, bounded slowdown, no false evictions) =="
python -m repro campaign --smoke --out benchmarks/out

echo
echo "== topology scoreboard smoke (every fabric within 10% of its DES) =="
python -m repro pfpp --topology all --crossval

echo
echo "== mixed-precision tuning smoke (gated search must converge) =="
python -m repro tune-precision --smoke --out benchmarks/out

echo
echo "== machine-readable benchmarks (schema'd BENCH_*.json) =="
python -m pytest -q -p no:cacheprovider --benchmark-disable \
  benchmarks/bench_fig02_logp.py \
  benchmarks/bench_fig08_globalsum.py \
  benchmarks/bench_fig09_coupled.py \
  benchmarks/bench_collectives.py \
  benchmarks/bench_service_throughput.py \
  benchmarks/bench_backend.py \
  benchmarks/bench_straggler.py \
  benchmarks/bench_topology_pfpp.py \
  benchmarks/bench_precision.py

python - <<'PY'
from repro.obs.bench import read_bench

record = read_bench("benchmarks/out/BENCH_topology.json")
rows = record["data"]["rows"]
gate = record["data"]["crossval_gate"]
worst = max(record["model_error"].values())
assert worst <= gate, f"topology crossval {worst:.1%} exceeds {gate:.0%}"
print(f"BENCH_topology.json validates: {len(rows)} rows, worst crossval {worst:.2%}")

record = read_bench("benchmarks/out/BENCH_precision.json")
data = record["data"]
assert data["wire"]["reduction"] >= data["reduction_gate"], (
    f"wire-byte reduction {data['wire']['reduction']:.0%} below "
    f"{data['reduction_gate']:.0%}"
)
for topo, shift in data["pfpp_shift"].items():
    assert shift["speedup_ps"] > 1.0, f"{topo}: no Pfpp,ps gain from tuned wire"
print(
    f"BENCH_precision.json validates: {data['n_evaluations']} evaluations, "
    f"{data['wire']['reduction']:.0%} wire-byte reduction, "
    f"Pfpp,ps x{min(s['speedup_ps'] for s in data['pfpp_shift'].values()):.2f}"
    "..."
    f"x{max(s['speedup_ps'] for s in data['pfpp_shift'].values()):.2f}"
)
PY

echo
echo "== chaos smoke (SIGKILL'd workers + service: nothing lost, bit-exact) =="
python -m repro service --chaos --seed 0 --jobs 12 --workers 4 --max-wall 45

echo
echo "ci.sh: all checks passed"
