"""Shim for legacy editable installs (offline environments without the
``wheel`` package cannot use PEP 660 editable wheels)."""
from setuptools import setup

setup()
